"""The cross-cell batch layer, the state plane, and the adaptive planner.

Covers the three new execution-layer pieces:

* :mod:`repro.pcm.stateplane` — deterministic pooled state is identical
  to fresh generation, read-only, capped, and cleanly disableable;
* :mod:`repro.perf.planner` — calibration seeding, EWMA updates, and
  the serial/pool/batch decision rule (including the 1-CPU case where
  pooling must lose);
* the engine's batched pool path — byte-identity against the serial
  reference, the new counters, and the crash fallback that returns a
  failed chunk's cells to the per-cell retry ladder.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.core import schemes
from repro.experiments import common
from repro.pcm import line as L
from repro.pcm import stateplane
from repro.perf import batch as batchexec
from repro.perf import engine
from repro.perf.cache import ResultCache
from repro.perf.engine import STATS, CellRunner
from repro.perf.planner import (
    DEFAULT_COSTS,
    EWMA_ALPHA,
    KERNEL_DEFAULT_COSTS,
    KERNEL_FUSED_DEFAULT_COSTS,
    AdaptivePlanner,
    fingerprint_matches,
    host_fingerprint,
)


def full_kernel_defaults() -> dict:
    """The default kernel snapshot: leaf rows plus ``_fused`` rows."""
    snapshot = dict(KERNEL_DEFAULT_COSTS)
    for name, value in KERNEL_FUSED_DEFAULT_COSTS.items():
        snapshot[f"{name}_fused"] = value
    return snapshot

SMALL = dict(length=60, cores=2)
MAIN_PID = os.getpid()
REAL_SIMULATE = batchexec.simulate_cell


def small_cell(bench="stream", scheme=None, **kwargs):
    params = {**SMALL, **kwargs}
    return common.cell(bench, scheme or schemes.baseline(), **params)


def payload(result) -> dict:
    return dataclasses.asdict(result)


def crash_chunks_in_worker(spec):
    """Fail batched dispatches only: the per-cell ladder stays healthy."""
    if os.getpid() != MAIN_PID:
        raise RuntimeError("injected chunk crash")
    return REAL_SIMULATE(spec)


class TestStatePlane:
    def test_pooled_values_match_fresh_generation(self):
        plane = stateplane.StatePlane()
        fresh_row = stateplane._generate_row(7, 1, 3)
        pooled = plane.pristine_row(7, 1, 3)
        assert np.array_equal(pooled, fresh_row)
        assert plane.row_misses == 1
        again = plane.pristine_row(7, 1, 3)
        assert again is pooled and plane.row_hits == 1

        key = (0, 5, 9)
        fresh_mask = stateplane._generate_weak_mask(0.1, key)
        assert plane.weak_mask(0.1, key) == fresh_mask
        assert plane.weak_mask(0.1, key) == fresh_mask
        assert plane.mask_hits == 1 and plane.mask_misses == 1
        # Saturated fraction short-circuits to the all-ones mask.
        assert plane.weak_mask(1.0, key) == L.MASK_ALL

    def test_pooled_rows_are_read_only(self):
        plane = stateplane.StatePlane()
        pooled = plane.pristine_row(1, 0, 0)
        with pytest.raises(ValueError):
            pooled[0, 0] = 1
        # Consumers copy; the copy is writable and equal.
        copy = pooled.copy()
        copy[0, 0] = 1

    def test_fifo_eviction_under_cap(self, monkeypatch):
        monkeypatch.setattr(stateplane, "ROW_POOL_CAP", 2)
        plane = stateplane.StatePlane()
        for row in range(3):
            plane.pristine_row(0, 0, row)
        assert plane.evictions == 1
        assert len(plane._rows) == 2
        # The evicted key regenerates identical bytes on re-touch.
        assert np.array_equal(
            plane.pristine_row(0, 0, 0), stateplane._generate_row(0, 0, 0)
        )

    def test_disabled_plane_generates_without_caching(self, monkeypatch):
        monkeypatch.setenv("REPRO_STATE_PLANE", "0")
        plane = stateplane.StatePlane()
        first = plane.pristine_row(0, 0, 0)
        second = plane.pristine_row(0, 0, 0)
        assert first is not second and np.array_equal(first, second)
        assert plane.entries == 0 and plane.row_misses == 2
        first[0, 0] = 1  # uncached arrays stay writable

    def test_array_rows_copy_from_plane(self):
        from repro.pcm.array import PCMArray

        stateplane.PLANE.reset()
        a = PCMArray(banks=2, rows_per_bank=16, seed=11)
        b = PCMArray(banks=2, rows_per_bank=16, seed=11)
        row_a = a.row_state(1, 4)
        row_b = b.row_state(1, 4)
        assert np.array_equal(row_a.stored, row_b.stored)
        assert stateplane.PLANE.row_hits == 1
        # Mutating one array's row must not leak into the other (or the pool).
        row_a.stored[0, 0] ^= np.uint64(1)
        assert not np.array_equal(row_a.stored, row_b.stored)
        assert np.array_equal(
            b.row_state(1, 4).stored, stateplane.PLANE.pristine_row(11, 1, 4)
        )


class TestPlanner:
    def _planner(self) -> AdaptivePlanner:
        planner = AdaptivePlanner()
        planner._seeded = True  # isolate from any committed calibration
        return planner

    def test_serial_on_one_effective_cpu(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        planner = self._planner()
        # Asking for 8 workers on 1 CPU must still pick serial.
        assert planner.decide(6, jobs=8, batch_cells=8) == "serial"

    def test_single_cell_is_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        planner = self._planner()
        assert planner.decide(1, jobs=8, batch_cells=8) == "serial"

    def test_batch_needs_enough_chunks(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        planner = self._planner()
        # 32 cells / 4 per chunk = 8 chunks >= 8 workers: batch is
        # eligible and (default costs) cheapest.
        assert planner.decide(32, jobs=8, batch_cells=4) == "batch"
        # 4 cells in one chunk would serialize on a single worker.
        assert planner.decide(4, jobs=8, batch_cells=8) == "pool"

    def test_observations_flip_the_decision(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        planner = self._planner()
        # Drive pooled costs way up: serial becomes the cheapest total.
        for _ in range(12):
            planner.observe("pool_cold", cells=2, seconds=8.0)
            planner.observe("batch", cells=2, seconds=8.0)
        assert planner.decide(4, jobs=4, batch_cells=2) == "serial"

    def test_observe_is_an_ewma(self):
        planner = self._planner()
        before = planner.cost("serial")
        planner.observe("serial", cells=2, seconds=2.0)  # 1.0 s/cell
        expected = EWMA_ALPHA * 1.0 + (1 - EWMA_ALPHA) * before
        assert planner.cost("serial") == pytest.approx(expected)
        planner.observe("serial", cells=0, seconds=1.0)  # ignored
        assert planner.cost("serial") == pytest.approx(expected)

    def test_seed_from_file(self, tmp_path):
        path = tmp_path / "BENCH_pool.json"
        path.write_text(json.dumps({
            "cells_per_batch": 4,
            "serial_batch_s": 2.0,
            "cold_batch_s": 3.0,
            "warm_batch_s": 1.0,
            "batch_batch_s": 0.8,
        }))
        planner = self._planner()
        assert planner.seed_from_file(path) is True
        assert planner.cost("serial") == pytest.approx(0.5)
        assert planner.cost("pool_cold") == pytest.approx(0.75)
        assert planner.cost("pool_warm") == pytest.approx(0.25)
        assert planner.cost("batch") == pytest.approx(0.2)

    def test_seed_ignores_malformed_files(self, tmp_path):
        planner = self._planner()
        assert planner.seed_from_file(tmp_path / "missing.json") is False
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert planner.seed_from_file(bad) is False
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"cells_per_batch": 0}))
        assert planner.seed_from_file(empty) is False
        assert planner.snapshot() == DEFAULT_COSTS

    def test_reset_restores_defaults(self):
        planner = self._planner()
        planner.observe("serial", cells=1, seconds=9.0)
        planner.reset()
        planner._seeded = True
        assert planner.snapshot() == DEFAULT_COSTS

    def test_seed_ignores_foreign_host(self, tmp_path):
        """Calibration from a materially different machine is skipped."""
        path = tmp_path / "BENCH_pool.json"
        path.write_text(json.dumps({
            "host": {"cpu_count": 4096, "machine": "vax"},
            "cells_per_batch": 4,
            "serial_batch_s": 2.0,
        }))
        planner = self._planner()
        assert planner.seed_from_file(path) is False
        assert planner.snapshot() == DEFAULT_COSTS
        # The same payload stamped with this host's fingerprint loads.
        path.write_text(json.dumps({
            "host": host_fingerprint(),
            "cells_per_batch": 4,
            "serial_batch_s": 2.0,
        }))
        assert planner.seed_from_file(path) is True
        assert planner.cost("serial") == pytest.approx(0.5)


class TestKernelPlanner:
    """The per-backend bit-kernel cost model and its host gating."""

    def _planner(self) -> AdaptivePlanner:
        planner = AdaptivePlanner()
        planner._seeded = True
        planner._kernel_seeded = True  # isolate from committed calibration
        return planner

    def test_fingerprint_matching_rules(self):
        current = host_fingerprint()
        assert set(current) == {"cpu_count", "machine", "python"}
        assert fingerprint_matches(current) is True
        assert fingerprint_matches(None) is True  # pre-v2 baselines
        assert fingerprint_matches("x86_64") is False  # malformed
        foreign = dict(current, cpu_count=current["cpu_count"] + 64)
        assert fingerprint_matches(foreign) is False
        # The Python version is recorded but not gated on.
        relaxed = dict(current, python="2.7")
        assert fingerprint_matches(relaxed) is True

    def test_decide_kernel_picks_cheapest_available(self):
        planner = self._planner()
        assert planner.decide_kernel(("python", "numpy", "compiled")) == (
            "compiled"
        )
        assert planner.decide_kernel(("python", "numpy")) == "numpy"
        assert planner.decide_kernel(("python",)) == "python"
        # Nothing available (or only unknown names): pure Python.
        assert planner.decide_kernel(()) == "python"
        assert planner.decide_kernel(("fortran",)) == "python"

    def test_observe_kernel_is_an_ewma(self):
        planner = self._planner()
        before = planner.kernel_cost("compiled")
        planner.observe_kernel("compiled", cells=2, seconds=2.0)  # 1.0 s/cell
        expected = EWMA_ALPHA * 1.0 + (1 - EWMA_ALPHA) * before
        assert planner.kernel_cost("compiled") == pytest.approx(expected)
        planner.observe_kernel("compiled", cells=0, seconds=1.0)  # ignored
        planner.observe_kernel("fortran", cells=1, seconds=1.0)  # ignored
        assert planner.kernel_cost("compiled") == pytest.approx(expected)
        # Enough slow observations flip the decision to the next backend
        # — on *both* cost rows, since a backend is costed at the
        # cheaper of its leaf and fused paths.
        for _ in range(12):
            planner.observe_kernel("compiled", cells=1, seconds=9.0)
            planner.observe_kernel(
                "compiled", cells=1, seconds=9.0, fused=True
            )
        assert planner.decide_kernel(("python", "numpy", "compiled")) == (
            "numpy"
        )

    def test_seed_kernels_from_file(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps({
            "schema_version": 3,
            "host": host_fingerprint(),
            "backends": {
                "python": {"cold_cell_s": 0.5, "cold_cell_fused_s": 0.45},
                "numpy": {"cold_cell_s": 0.4},
                "compiled": {"cold_cell_s": 0.1, "cold_cell_fused_s": 0.05},
                "fortran": {"cold_cell_s": 0.01},  # unknown: ignored
            },
        }))
        planner = self._planner()
        assert planner.seed_kernels_from_file(path) is True
        assert planner.kernel_snapshot() == {
            "python": 0.5, "numpy": 0.4, "compiled": 0.1,
            "python_fused": 0.45, "compiled_fused": 0.05,
            # No fused measurement for numpy: the default row stays.
            "numpy_fused": KERNEL_FUSED_DEFAULT_COSTS["numpy"],
        }

    def test_seed_kernels_ignores_foreign_host(self, tmp_path):
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps({
            "schema_version": 2,
            "host": {"cpu_count": 4096, "machine": "vax"},
            "backends": {"compiled": {"cold_cell_s": 0.001}},
        }))
        planner = self._planner()
        assert planner.seed_kernels_from_file(path) is False
        assert planner.kernel_snapshot() == full_kernel_defaults()

    def test_seed_kernels_ignores_malformed_files(self, tmp_path):
        planner = self._planner()
        assert planner.seed_kernels_from_file(tmp_path / "nope.json") is False
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert planner.seed_kernels_from_file(bad) is False
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps({"backends": "compiled"}))
        assert planner.seed_kernels_from_file(flat) is False
        assert planner.kernel_snapshot() == full_kernel_defaults()

    def test_reset_restores_kernel_defaults(self):
        planner = self._planner()
        planner.observe_kernel("python", cells=1, seconds=9.0)
        planner.observe_kernel("python", cells=1, seconds=9.0, fused=True)
        planner.reset()
        planner._kernel_seeded = True
        assert planner.kernel_snapshot() == full_kernel_defaults()

    def test_decide_fused_defaults(self):
        """Out of the box ``auto`` fuses only where fusing pays: the
        compiled backend's fused default undercuts its leaf row; the
        interpreted backends must measure faster first."""
        planner = self._planner()
        assert planner.decide_fused("compiled") is True
        assert planner.decide_fused("python") is False
        assert planner.decide_fused("numpy") is False
        assert planner.decide_fused("fortran") is False  # unknown name

    def test_fused_observations_flip_decide_fused(self):
        planner = self._planner()
        # A fused regression steers compiled back to the leaf path...
        for _ in range(12):
            planner.observe_kernel(
                "compiled", cells=1, seconds=9.0, fused=True
            )
        assert planner.decide_fused("compiled") is False
        # ...and fast fused measurements earn python the fused pick.
        for _ in range(12):
            planner.observe_kernel(
                "python", cells=1, seconds=0.001, fused=True
            )
        assert planner.decide_fused("python") is True

    def test_observe_kernel_fused_is_a_separate_ewma(self):
        planner = self._planner()
        leaf_before = planner.kernel_cost("compiled")
        fused_before = planner.kernel_cost("compiled", fused=True)
        planner.observe_kernel("compiled", cells=2, seconds=2.0, fused=True)
        expected = EWMA_ALPHA * 1.0 + (1 - EWMA_ALPHA) * fused_before
        assert planner.kernel_cost("compiled", fused=True) == (
            pytest.approx(expected)
        )
        # The leaf row is untouched by fused observations.
        assert planner.kernel_cost("compiled") == leaf_before


class TestBatchedEngine:
    def test_batched_results_match_serial_and_count(self, tmp_path):
        specs = [
            small_cell("stream"), small_cell("mcf"),
            small_cell("stream", schemes.by_name("LazyC")),
            small_cell("mcf", schemes.by_name("LazyC")),
        ]
        serial = CellRunner(
            jobs=1, cache=ResultCache(tmp_path / "serial", enabled=True)
        ).run_cells(specs)
        batched = CellRunner(
            jobs=2, plan="batch", batch_cells=2,
            cache=ResultCache(tmp_path / "batch", enabled=True),
        ).run_cells(specs)
        assert [payload(s) for s in serial] == [payload(b) for b in batched]
        assert STATS.batched_cells == 4
        assert STATS.batch_dispatches == 2  # two trace-key groups
        assert "batch: 4 cells in 2 dispatches" in STATS.summary()

    def test_batched_results_land_in_the_cache(self, tmp_path):
        specs = [small_cell("stream"), small_cell("mcf")]
        cache = ResultCache(tmp_path / "c", enabled=True)
        CellRunner(jobs=2, plan="batch", cache=cache).run_cells(specs)
        before = STATS.simulated
        CellRunner(jobs=2, plan="batch", cache=cache).run_cells(specs)
        assert STATS.simulated == before
        assert STATS.cache_hits == 2

    def test_chunk_crash_rejoins_per_cell_ladder(self, tmp_path, monkeypatch):
        specs = [small_cell("stream"), small_cell("mcf")]
        want = [
            payload(r)
            for r in CellRunner(
                jobs=1, cache=ResultCache(tmp_path / "clean", enabled=True)
            ).run_cells(specs)
        ]
        # Only the batched entry point crashes; the per-cell ladder the
        # cells rejoin (engine._simulate_with_phases) is untouched.
        monkeypatch.setattr(
            batchexec, "simulate_cell", crash_chunks_in_worker
        )
        runner = CellRunner(
            jobs=2, plan="batch", batch_cells=2, retries=1, backoff=0.0,
            cache=ResultCache(tmp_path / "chaos", enabled=True),
        )
        results = runner.run_cells(specs)
        assert [payload(r) for r in results] == want
        assert STATS.batch_dispatches >= 1
        assert STATS.batched_cells == 0  # no chunk completed
        assert STATS.worker_retries >= 2  # both cells rejoined the ladder
        assert STATS.pool_recycles >= 1

    def test_forced_batch_degrades_serially_with_one_job(self, tmp_path):
        specs = [small_cell("stream"), small_cell("mcf")]
        runner = CellRunner(
            jobs=1, plan="batch",
            cache=ResultCache(tmp_path / "one", enabled=True),
        )
        results = runner.run_cells(specs)
        assert len(results) == 2
        assert STATS.batch_dispatches == 0  # nothing to overlap: in-process

    def test_auto_counts_planner_picks(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        specs = [small_cell("stream"), small_cell("mcf")]
        runner = CellRunner(
            jobs=2, plan="auto",
            cache=ResultCache(tmp_path / "auto", enabled=True),
        )
        runner.run_cells(specs)
        # 1 effective CPU: the planner must refuse to pool.
        assert STATS.planner_serial_picks == 1
        assert STATS.planner_pool_picks == 0
        assert STATS.planner_batch_picks == 0
        assert "planner: 1 serial / 0 pool / 0 batch picks" in STATS.summary()

    def test_auto_counts_kernel_picks(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        runner = CellRunner(
            jobs=1, kernel_backend="auto",
            cache=ResultCache(tmp_path / "k", enabled=True),
        )
        runner.run_cells([small_cell("stream")])
        picks = (
            STATS.kernel_python_picks
            + STATS.kernel_numpy_picks
            + STATS.kernel_compiled_picks
        )
        assert picks == 1
        assert "kernels:" in STATS.summary()

    def test_forced_fused_counts_and_stays_byte_identical(
        self, tmp_path, monkeypatch
    ):
        specs = [small_cell("stream"), small_cell("mcf")]
        want = [
            payload(r)
            for r in CellRunner(
                jobs=1, cache=ResultCache(tmp_path / "leaf", enabled=True)
            ).run_cells(specs)
        ]
        monkeypatch.setenv("REPRO_KERNEL_FUSED", "1")
        results = CellRunner(
            jobs=1, cache=ResultCache(tmp_path / "fused", enabled=True)
        ).run_cells(specs)
        assert [payload(r) for r in results] == want
        assert STATS.kernel_fused_picks >= 1
        assert "fused write phase" in STATS.summary()

    def test_fused_off_never_picks(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_FUSED", "off")
        CellRunner(
            jobs=1, cache=ResultCache(tmp_path / "off", enabled=True)
        ).run_cells([small_cell("stream")])
        assert STATS.kernel_fused_picks == 0
        assert "fused write phase" not in STATS.summary()

    def test_invalid_plan_and_batch_cells_rejected(self):
        with pytest.raises(ValueError, match="plan must be one of"):
            CellRunner(jobs=1, plan="fastest")
        with pytest.raises(ValueError, match="batch_cells must be >= 1"):
            CellRunner(jobs=1, batch_cells=0)

    def test_plan_batches_groups_by_trace_key(self):
        specs = [
            small_cell("stream"), small_cell("mcf"),
            small_cell("stream", schemes.by_name("LazyC")),
            small_cell("stream", length=40),
        ]
        chunks, singles = batchexec.plan_batches(specs, batch_cells=8)
        assert singles == []
        by_key = sorted(sorted(chunk) for chunk in chunks)
        # stream@60 cells batch together; mcf and stream@40 stand alone.
        assert by_key == [[0, 2], [1], [3]]
        with pytest.raises(ValueError, match="batch_cells must be >= 1"):
            batchexec.plan_batches(specs, batch_cells=0)
