"""Tests for per-core (n:m) allocator tags (Section 4.4's priority use case).

"In a real system, an application may demand (n:m) allocation (n != m)
only for performance-critical data structures" — here, one high-priority
core gets (1:2) isolation while the rest run (1:1), all sharing the DIMM.
"""

from __future__ import annotations

import pytest

from repro.core import schemes
from repro.core.system import SDPCMSystem
from repro.errors import SimulationError
from repro.traces.workload import homogeneous_workload
from tests.conftest import small_config


def run_tagged(tags, bench="mcf", length=400, cores=2):
    cfg = small_config(schemes.baseline(), cores=cores)
    wl = homogeneous_workload(bench, cores=cores, length=length, seed=7)
    system = SDPCMSystem(cfg, nm_tags=tags)
    return system.run(wl), system


class TestPerCoreTags:
    def test_tag_count_validated(self):
        cfg = small_config(schemes.baseline())
        with pytest.raises(SimulationError):
            SDPCMSystem(cfg, nm_tags=[(1, 2)])  # 2 cores, 1 tag

    def test_priority_core_generates_no_vnc(self):
        """The (1:2)-tagged core's writes need no verification: all VnC
        work in the mixed run is attributable to the (1:1) core."""
        res, _ = run_tagged([(1, 2), (1, 1)])
        wl = homogeneous_workload("mcf", cores=2, length=400, seed=7)
        core1_writes = sum(1 for r in wl.traces[1] if r.is_write)
        # Each (1:1) write verifies both neighbours; the (1:2) core adds at
        # most a handful of 64 MB block-edge verifications.
        assert res.counters.verifications <= 2 * core1_writes + 8

    def test_mixed_tags_keep_allocations_disjoint(self):
        res, system = run_tagged([(1, 2), (1, 1)])
        # Blocks are handed to (1:2) wholesale, so the two allocators never
        # share a 64 MB block (and hence never abut except at block edges).
        assert system.allocator.owned_blocks(1, 2) >= 1

    def test_uniform_tags_match_global_scheme(self):
        """Tagging every core (2:3) behaves like the global (2:3) scheme."""
        cfg = small_config(schemes.baseline())
        wl = homogeneous_workload("stream", cores=2, length=300, seed=7)
        tagged = SDPCMSystem(cfg, nm_tags=[(2, 3), (2, 3)]).run(wl)
        cfg23 = small_config(schemes.nm_alloc(2, 3))
        globally = SDPCMSystem(cfg23).run(wl)
        # Same verification load (identical strip usage rules).
        assert tagged.counters.verifications == pytest.approx(
            globally.counters.verifications, rel=0.05
        )

    def test_reliability_invariant_holds_mixed(self):
        from tests.test_integration_invariants import audit_system
        from repro.alloc.strips import is_no_use

        res, system = run_tagged([(1, 2), (1, 1)], length=300)
        # Disturbance may persist only in strips that are no-use under the
        # allocator that owns them; everything else must be clean
        # (baseline corrects immediately).
        from repro.pcm import line as L

        for (bank, row), state in system.array._rows.items():
            for line in range(64):
                if not L.popcount(state.disturbed[line]):
                    continue
                assert is_no_use(row, 1, 2)
