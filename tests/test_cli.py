"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestListCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "RPKI" in out

    def test_list_schemes(self, capsys):
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        assert "DIN" in out and "LazyC+PreRead" in out and "WP+LazyC" in out


class TestSimulate:
    def test_simulate_runs(self, capsys):
        rc = main(
            ["simulate", "wrf", "--scheme", "LazyC", "--length", "100",
             "--cores", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "CPI" in out and "corrections/write" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "not-a-workload"])

    def test_unknown_scheme_errors(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["simulate", "wrf", "--scheme", "bogus", "--length", "10",
                  "--cores", "1"])


class TestCompare:
    def test_compare_runs(self, capsys):
        rc = main(["compare", "xalan", "--length", "100", "--cores", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "(1:2)" in out


class TestTraceCommands:
    def test_gen_and_analyze_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "t.npz"
        assert main(["gen-trace", "wrf", str(out), "--length", "500"]) == 0
        assert out.exists()
        assert main(["analyze", str(out)]) == 0
        text = capsys.readouterr().out
        assert "RPKI" in text and "footprint" in text

    def test_gen_text_format(self, tmp_path, capsys):
        out = tmp_path / "t.trace"
        assert main(["gen-trace", "stream", str(out), "--length", "100"]) == 0
        content = out.read_text()
        assert content.splitlines()[0].startswith("#")


class TestExperiment:
    def test_experiment_dispatch(self, capsys):
        rc = main(["experiment", "table1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "figure99"])
        assert rc == 2
