"""The perf engine: cache keying, determinism across execution modes.

The headline guarantee: one cell produces an identical
:class:`SimulationResult` whether it is simulated serially, fanned out
over the process pool, or recalled from a warm disk cache.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import schemes
from repro.experiments import common
from repro.perf import engine
from repro.perf.cache import ResultCache
from repro.perf.cellspec import CellSpec, cache_key, simulate_cell
from repro.perf.engine import STATS, CellRunner

SMALL = dict(length=80, cores=2)


def small_cell(bench="stream", scheme=None, **kwargs) -> CellSpec:
    params = {**SMALL, **kwargs}
    return common.cell(bench, scheme or schemes.baseline(), **params)


def payload(result) -> dict:
    """Full comparable dump of a SimulationResult."""
    return dataclasses.asdict(result)


class TestEnvParsing:
    def test_trace_length_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "12k")
        with pytest.raises(ValueError, match="REPRO_TRACE_LEN"):
            common.trace_length()

    def test_core_count_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORES", "many")
        with pytest.raises(ValueError, match="REPRO_CORES"):
            common.core_count()

    def test_valid_values_still_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "321")
        monkeypatch.setenv("REPRO_CORES", "4")
        assert common.trace_length() == 321
        assert common.core_count() == 4

    def test_repro_jobs_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "fast")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            engine.default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            engine.default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert engine.default_jobs() == 3


class TestCacheKey:
    def test_key_is_stable(self):
        assert cache_key(small_cell()) == cache_key(small_cell())

    def test_key_covers_every_knob(self):
        base = cache_key(small_cell())
        assert cache_key(small_cell(bench="mcf")) != base
        assert cache_key(small_cell(length=81)) != base
        assert cache_key(small_cell(seed=2)) != base
        assert cache_key(small_cell(scheme=schemes.lazyc())) != base
        assert cache_key(small_cell(write_queue_entries=16)) != base
        assert cache_key(small_cell(lifetime_fraction=0.5)) != base

    def test_schema_version_invalidates(self, monkeypatch):
        base = cache_key(small_cell())
        monkeypatch.setattr("repro.perf.cellspec.CACHE_SCHEMA_VERSION", 999)
        assert cache_key(small_cell()) != base


class TestCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        spec = small_cell()
        result = simulate_cell(spec)
        key = cache_key(spec)
        assert cache.load(key) is None
        cache.store(key, result)
        assert payload(cache.load(key)) == payload(result)
        info = cache.info()
        assert info.entries == 1 and info.bytes > 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        key = cache_key(small_cell())
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.load(key) is None
        assert cache.info().entries == 0  # the bad entry was dropped

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=True)
        spec = small_cell()
        cache.store(cache_key(spec), simulate_cell(spec))
        assert cache.clear() == 1
        assert cache.info().entries == 0

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        spec = small_cell()
        cache.store(cache_key(spec), simulate_cell(spec))
        assert cache.load(cache_key(spec)) is None
        assert not any(tmp_path.iterdir())

    def test_env_toggle(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert not ResultCache().enabled
        monkeypatch.setenv("REPRO_CACHE", "1")
        cache = ResultCache()
        assert cache.enabled and cache.root == tmp_path


class TestDeterminism:
    def test_serial_pool_and_cache_agree(self, tmp_path):
        """The acceptance property: identical payloads from all three paths."""
        specs = [small_cell("stream"), small_cell("mcf")]

        serial = CellRunner(
            jobs=1, cache=ResultCache(tmp_path / "serial", enabled=True)
        ).run_cells(specs)

        pooled = CellRunner(
            jobs=2, plan="pool", cache=ResultCache(tmp_path / "pool", enabled=True)
        ).run_cells(specs)

        warm_runner = CellRunner(
            jobs=1, cache=ResultCache(tmp_path / "serial", enabled=True)
        )
        before = STATS.simulated
        warm = warm_runner.run_cells(specs)
        assert STATS.simulated == before  # zero new simulations

        for s, p, w in zip(serial, pooled, warm):
            assert payload(s) == payload(p) == payload(w)

    def test_batch_order_matches_submission(self, tmp_path):
        runner = CellRunner(jobs=1, cache=ResultCache(tmp_path, enabled=True))
        a, b = small_cell("stream"), small_cell("mcf")
        forward = runner.run_cells([a, b])
        backward = runner.run_cells([b, a])
        assert payload(forward[0]) == payload(backward[1])
        assert payload(forward[1]) == payload(backward[0])

    def test_duplicates_simulated_once(self, tmp_path):
        runner = CellRunner(jobs=1, cache=ResultCache(tmp_path, enabled=True))
        spec = small_cell()
        before_sim, before_dup = STATS.simulated, STATS.deduplicated
        first, second = runner.run_cells([spec, spec])
        assert STATS.simulated == before_sim + 1
        assert STATS.deduplicated == before_dup + 1
        assert payload(first) == payload(second)

    def test_run_helper_hits_cache(self):
        """common.run goes through the engine, so a repeat is a cache hit."""
        kwargs = dict(length=SMALL["length"], cores=SMALL["cores"])
        first = common.run("stream", schemes.baseline(), **kwargs)
        before = STATS.simulated
        again = common.run("stream", schemes.baseline(), **kwargs)
        assert STATS.simulated == before
        assert payload(first) == payload(again)
