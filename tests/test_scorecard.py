"""Tests for the reproduction scorecard."""

from __future__ import annotations

from repro.experiments import scorecard


class TestScorecard:
    def test_all_checks_pass_at_small_scale(self):
        result = scorecard.run_experiment(length=250, workloads=("mcf", "stream"))
        assert result.metrics["passed"] == result.metrics["checks"]
        assert result.metrics["checks"] >= 12

    def test_render_contains_verdicts(self):
        result = scorecard.run_experiment(length=200, workloads=("stream",))
        text = result.render()
        assert "PASS" in text and "EXACT" in text and "DIVERGE" in text
