"""Warm pool, shared-memory trace plane, and cross-experiment pipelining.

The contract under test: a batch executed over the warm process pool
with parent-published shared-memory traces — prefetched or not — is
**byte-identical** (hash comparison over full result payloads) to
serial in-worker synthesis, and the PR 3 crash ladder still holds, now
expressed as generation recycling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.core import schemes
from repro.experiments import common
from repro.perf import engine
from repro.perf.cache import ResultCache
from repro.perf.engine import STATS, CellRunner
from repro.perf.pool import WARM_POOL, WarmPool
from repro.traces import shm
from repro.traces.workload import homogeneous_workload

SMALL = dict(length=80, cores=2)
MAIN_PID = os.getpid()
REAL_SIMULATE = engine.simulate_cell
REPO_ROOT = Path(__file__).resolve().parents[1]


def small_cell(bench="stream", scheme=None, **kwargs):
    params = {**SMALL, **kwargs}
    return common.cell(bench, scheme or schemes.baseline(), **params)


def varied_batch():
    """Two benches x three schemes, plus one exact duplicate."""
    specs = [
        small_cell(bench, scheme)
        for bench in ("stream", "mcf")
        for scheme in (schemes.baseline(), schemes.din(), schemes.lazyc())
    ]
    specs.append(small_cell("stream", schemes.baseline()))  # in-batch dup
    return specs


def sweep_hash(results) -> str:
    """One hash over the full payload of every result, in order."""
    blob = json.dumps(
        [dataclasses.asdict(r) for r in results],
        sort_keys=True, default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class TestWarmPoolUnit:
    def test_cold_get_forks_then_reuses(self):
        pool = WarmPool()
        try:
            executor, reused = pool.get(2)
            assert not reused and pool.generation == 1 and pool.workers == 2
            again, reused = pool.get(2)
            assert reused and again is executor
            assert pool.reuses == 1 and pool.generation == 1
        finally:
            pool.shutdown()

    def test_smaller_request_reuses_larger_pool(self):
        pool = WarmPool()
        try:
            executor, _ = pool.get(2)
            again, reused = pool.get(1)
            assert reused and again is executor
        finally:
            pool.shutdown()

    def test_growth_reforks_without_counting_recycle(self):
        pool = WarmPool()
        try:
            first, _ = pool.get(1)
            bigger, reused = pool.get(2)
            assert not reused and bigger is not first
            assert pool.generation == 2 and pool.recycles == 0
        finally:
            pool.shutdown()

    def test_retire_ends_generation_and_counts(self):
        pool = WarmPool()
        try:
            pool.get(1)
            pool.retire()
            assert not pool.alive and pool.recycles == 1
            pool.get(1)
            assert pool.generation == 2
        finally:
            pool.shutdown()

    def test_retire_and_shutdown_are_idempotent_when_cold(self):
        pool = WarmPool()
        pool.retire()
        pool.shutdown()
        assert pool.recycles == 0 and not pool.alive

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            WarmPool().get(0)

    def test_warm_pool_is_shared_across_runners(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", enabled=False)
        first = CellRunner(jobs=2, plan="pool", cache=cache)
        second = CellRunner(jobs=2, plan="pool", cache=cache)
        first.run_cells([small_cell("stream"), small_cell("mcf")])
        generation = WARM_POOL.generation
        second.run_cells([small_cell("stream", seed=11),
                          small_cell("mcf", seed=11)])
        assert WARM_POOL.generation == generation  # no re-fork
        assert STATS.pool_reuses >= 1


class TestTracePlane:
    def test_workload_for_memoizes(self):
        first = shm.workload_for("stream", length=60, cores=2, seed=7)
        second = shm.workload_for("stream", length=60, cores=2, seed=7)
        assert second is first

    def test_handle_for_publishes_once_then_hits(self):
        handle = shm.PLANE.handle_for("stream", 60, 2, 7)
        again = shm.PLANE.handle_for("stream", 60, 2, 7)
        assert again is handle
        assert shm.PLANE.published == 1 and shm.PLANE.hits == 1

    def test_empty_workload_has_no_segment(self):
        assert shm.PLANE.handle_for("stream", 0, 2, 7) is None
        assert shm.PLANE.handle_for("stream", 60, 0, 7) is None

    def test_attached_workload_is_byte_identical_and_readonly(self):
        handle = shm.PLANE.handle_for("stream", 120, 2, 7)
        shm._WORKLOADS.clear()  # force the worker-side attach path
        shm.ensure_attached(handle)
        attached = shm.workload_for("stream", length=120, cores=2, seed=7)
        fresh = homogeneous_workload("stream", cores=2, length=120, seed=7)
        for got, want in zip(attached.traces, fresh.traces):
            np.testing.assert_array_equal(got.is_write, want.is_write)
            np.testing.assert_array_equal(got.address, want.address)
            np.testing.assert_array_equal(got.gap, want.gap)
            assert not got.is_write.flags.writeable
            assert not got.address.flags.writeable

    def test_close_unlinks_segments(self):
        handle = shm.PLANE.handle_for("stream", 60, 2, 7)
        shm.PLANE.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)

    def test_vanished_segment_falls_back_to_synthesis(self):
        handle = shm.TraceHandle(
            key=shm.trace_key("stream", 60, 2, 7),
            name="reprotp_gone_0", cores=2, length=60,
        )
        shm.ensure_attached(handle)  # must not raise
        workload = shm.workload_for("stream", length=60, cores=2, seed=7)
        fresh = homogeneous_workload("stream", cores=2, length=60, seed=7)
        np.testing.assert_array_equal(
            workload.traces[0].address, fresh.traces[0].address
        )


class TestContractByteIdentical:
    """Satellite: warm pool + shm trace plane vs serial, hash-compared."""

    def test_pool_plane_pipeline_matches_serial(self, tmp_path):
        specs = varied_batch()
        serial = CellRunner(jobs=1, cache=ResultCache(tmp_path / "serial",
                                                      enabled=True))
        want = sweep_hash(serial.run_cells(specs))
        assert shm.PLANE.published == 0  # serial mode never touches shm

        pooled = CellRunner(jobs=2, plan="pool", cache=ResultCache(tmp_path / "pooled",
                                                      enabled=True))
        submitted = pooled.prefetch(specs)
        assert submitted == 6  # 7 specs, one duplicate
        assert STATS.cross_exp_dedup == 1
        got = sweep_hash(pooled.run_cells(specs))
        assert got == want
        assert STATS.inflight_hits == submitted
        assert shm.PLANE.published >= 1  # traces travelled via the plane

        # Third pass: everything recalled from the pooled run's cache.
        cached = CellRunner(jobs=2, plan="pool", cache=ResultCache(tmp_path / "pooled",
                                                      enabled=True))
        hits_before = STATS.cache_hits
        assert sweep_hash(cached.run_cells(specs)) == want
        assert STATS.cache_hits == hits_before + 6

    def test_prefetch_is_noop_serially(self, tmp_path):
        serial = CellRunner(jobs=1, cache=ResultCache(tmp_path / "c",
                                                      enabled=True))
        assert serial.prefetch(varied_batch()) == 0
        assert STATS.prefetched == 0 and not serial._inflight

    def test_prefetch_skips_cached_cells(self, tmp_path):
        cache = ResultCache(tmp_path / "c", enabled=True)
        specs = [small_cell("stream"), small_cell("mcf")]
        CellRunner(jobs=1, cache=cache).run_cells([specs[0]])  # warm one
        pooled = CellRunner(jobs=2, plan="pool", cache=cache)
        try:
            assert pooled.prefetch(specs) == 1  # only the cold cell
        finally:
            pooled.cancel_prefetch()


@pytest.mark.chaos
class TestWarmPoolChaos:
    def crash_in_worker(self, spec):
        if os.getpid() != MAIN_PID:
            raise RuntimeError("injected worker crash")
        return REAL_SIMULATE(spec)

    def test_crash_recycles_generation_then_identical_recovery(
        self, monkeypatch, tmp_path
    ):
        specs = [small_cell("stream"), small_cell("mcf")]
        clean = CellRunner(jobs=1, cache=ResultCache(tmp_path / "clean",
                                                     enabled=True))
        want = sweep_hash(clean.run_cells(specs))

        monkeypatch.setattr(engine, "simulate_cell", self.crash_in_worker)
        runner = CellRunner(jobs=2, plan="pool", retries=1, backoff=0.0,
                            cache=ResultCache(tmp_path / "chaos",
                                              enabled=True))
        generation = WARM_POOL.generation  # monotonic across the process
        results = runner.run_cells(specs)
        assert sweep_hash(results) == want
        # Both the first round and the retry round crashed: each retired
        # its warm-pool generation, then the serial fallback recovered.
        assert STATS.pool_recycles == 2
        assert WARM_POOL.generation == generation + 2 and not WARM_POOL.alive
        assert STATS.worker_crashes == 4
        assert STATS.serial_fallback_cells == 2

    def test_prefetched_crash_rejoins_retry_ladder(
        self, monkeypatch, tmp_path
    ):
        specs = [small_cell("stream"), small_cell("mcf")]
        clean = CellRunner(jobs=1, cache=ResultCache(tmp_path / "clean",
                                                     enabled=True))
        want = sweep_hash(clean.run_cells(specs))

        monkeypatch.setattr(engine, "simulate_cell", self.crash_in_worker)
        runner = CellRunner(jobs=2, plan="pool", retries=1, backoff=0.0,
                            cache=ResultCache(tmp_path / "chaos",
                                              enabled=True))
        assert runner.prefetch(specs) == 2
        results = runner.run_cells(specs)  # collect -> fail -> ladder
        assert sweep_hash(results) == want
        assert STATS.serial_fallback_cells == 2
        assert not runner._inflight

    def test_sigint_leaves_no_shm_segments(self, tmp_path):
        """Interrupt a pooled, pipelined sweep; /dev/shm must end clean."""
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm on this platform")
        env = dict(
            os.environ,
            PYTHONPATH=str(REPO_ROOT / "src"),
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
            REPRO_TRACE_LEN="2000",
            REPRO_CORES="8",
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner",
             "--jobs", "2", "figure11", "figure4", "figure17"],
            env=env, cwd=REPO_ROOT, start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        pattern = f"{shm.SHM_PREFIX}_{proc.pid}_*"
        try:
            deadline = time.monotonic() + 60
            while not list(shm_dir.glob(pattern)):
                if proc.poll() is not None or time.monotonic() > deadline:
                    out = proc.communicate()[0]
                    pytest.fail(f"sweep never published a segment:\n{out}")
                time.sleep(0.05)
            proc.send_signal(signal.SIGINT)
            # A SIGINT that lands mid-fork is swallowed by the
            # interpreter ("Exception ignored in" an at-fork callback) —
            # like a user's first Ctrl-C appearing to do nothing — so
            # keep pressing until the runner's handler gets to run.
            for _ in range(12):
                try:
                    proc.wait(timeout=10)
                    break
                except subprocess.TimeoutExpired:
                    proc.send_signal(signal.SIGINT)
            # The interrupt handler terminates the pool's workers, so
            # stdout reaches EOF promptly; a hang here means orphaned
            # workers survived and kept the pipe open.
            out = proc.communicate(timeout=60)[0]
        finally:
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
                proc.communicate()
        assert proc.returncode == 130, out  # the runner's clean-exit code
        # The runner unlinks eagerly; the multiprocessing resource
        # tracker is the asynchronous backstop — give it a moment.
        deadline = time.monotonic() + 5
        while list(shm_dir.glob(pattern)) and time.monotonic() < deadline:
            time.sleep(0.1)
        leaked = list(shm_dir.glob(pattern))
        assert not leaked, f"leaked shared-memory segments: {leaked}"
