"""Tests for the Figure 6 address mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.config import LINE_BYTES, PAGES_PER_STRIP, PAGE_BYTES
from repro.errors import DeviceError
from repro.mem.address import AddressMapper
from repro.pcm.array import LineAddress


@pytest.fixture
def mapper() -> AddressMapper:
    return AddressMapper(banks=16, rows_per_bank=1024)


class TestFrameMapping:
    def test_interleaving(self, mapper):
        """Consecutive frames land in consecutive banks (Figure 6 / [17])."""
        banks = [mapper.frame_to_bank_row(f)[0] for f in range(16)]
        assert banks == list(range(16))

    def test_adjacent_frames_16_apart(self, mapper):
        assert mapper.adjacent_frames(100) == [84, 116]
        assert mapper.adjacent_frames(5) == [21]  # top edge

    def test_adjacency_is_row_adjacency(self, mapper):
        f = 100
        bank, row = mapper.frame_to_bank_row(f)
        for nf in mapper.adjacent_frames(f):
            nbank, nrow = mapper.frame_to_bank_row(nf)
            assert nbank == bank
            assert abs(nrow - row) == 1

    @given(st.integers(0, 16 * 1024 - 1))
    def test_roundtrip(self, frame):
        mapper = AddressMapper(banks=16, rows_per_bank=1024)
        bank, row = mapper.frame_to_bank_row(frame)
        assert mapper.bank_row_to_frame(bank, row) == frame

    def test_strip_is_row(self, mapper):
        for frame in (0, 15, 16, 31, 160):
            strip = mapper.strip_of_frame(frame)
            _, row = mapper.frame_to_bank_row(frame)
            assert strip == row

    def test_out_of_range(self, mapper):
        with pytest.raises(DeviceError):
            mapper.frame_to_bank_row(16 * 1024)


class TestLineMapping:
    def test_line_address(self, mapper):
        addr = mapper.line_address(17, 5)
        assert addr == LineAddress(bank=1, row=1, line=5)

    def test_physical_byte_address(self, mapper):
        byte_addr = 17 * PAGE_BYTES + 5 * LINE_BYTES
        assert mapper.physical_to_line_address(byte_addr) == LineAddress(1, 1, 5)

    def test_bad_line_rejected(self, mapper):
        with pytest.raises(DeviceError):
            mapper.line_address(0, 64)

    def test_non_16_bank_layout_rejected(self):
        with pytest.raises(DeviceError):
            AddressMapper(banks=8, rows_per_bank=100)
