"""Tests for cell semantics and the named op timings."""

from __future__ import annotations

import pytest

from repro.config import TimingConfig
from repro.pcm.cell import CellState, Pulse, disturbed_value, pulse_for
from repro.pcm.timing import OpTimings


class TestCellSemantics:
    def test_bit_encoding(self):
        """Amorphous = 0, crystalline = 1 (Section 2.1)."""
        assert CellState.AMORPHOUS.bit == 0
        assert CellState.CRYSTALLINE.bit == 1

    def test_vulnerability(self):
        """Only idle amorphous cells can be disturbed (Section 2.2.1)."""
        assert CellState.AMORPHOUS.vulnerable
        assert not CellState.CRYSTALLINE.vulnerable

    def test_pulse_selection(self):
        assert pulse_for(0) is Pulse.RESET
        assert pulse_for(1) is Pulse.SET
        with pytest.raises(ValueError):
            pulse_for(2)

    def test_disturbed_cell_reads_one(self):
        """Partial crystallisation collapses resistance: reads as 1."""
        assert disturbed_value() == 1


class TestOpTimings:
    def test_named_latencies(self):
        ops = OpTimings(TimingConfig())
        assert ops.array_read == 400
        assert ops.verify_pair == 800
        assert ops.min_write == 400
        assert ops.max_single_round_write == 800

    def test_ns_conversion(self):
        ops = OpTimings(TimingConfig())
        assert ops.ns(400) == pytest.approx(100.0)   # 100 ns read at 4 GHz
        assert ops.ns(800) == pytest.approx(200.0)
