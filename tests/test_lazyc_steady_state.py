"""Longer-horizon steady-state checks on LazyCorrection.

Figure 12's claim is not just the instantaneous correction rate but that
LazyC stays effective as errors accumulate: these tests replay longer
traces than the unit tests and assert the steady-state properties that
would break if clearing (demand-write consolidation) or the overflow
policy regressed.
"""

from __future__ import annotations

import pytest

from repro.core import schemes
from repro.core.system import simulate
from tests.conftest import small_config, small_workload


@pytest.fixture(scope="module")
def long_run():
    wl = small_workload("mcf", cores=2, length=1500)
    return simulate(small_config(schemes.lazyc()), wl)


class TestSteadyState:
    def test_corrections_stay_rare(self, long_run):
        """ECP-6 keeps first-level corrections well under baseline's ~1.8
        even after thousands of writes accumulate errors."""
        assert long_run.counters.corrections_per_write < 0.4

    def test_most_errors_absorbed(self, long_run):
        c = long_run.counters
        assert c.ecp_absorbed_errors > 0
        absorbed_fraction = c.ecp_absorbed_errors / max(1, c.bitline_errors)
        assert absorbed_fraction > 0.7

    def test_consolidation_by_demand_writes_happens(self, long_run):
        """The 'normal write clears accumulated WD errors' path must fire
        regularly on a write-heavy workload."""
        assert long_run.counters.ecp_cleared_by_write > 0

    def test_cascades_remain_geometric(self, long_run):
        """Cascade corrections never exceed first-level corrections by a
        large factor (geometric decay, Section 3.2/4.2)."""
        c = long_run.counters
        assert c.cascade_corrections <= 3 * max(1, c.corrections)
        assert c.cascade_truncations == 0  # cap unreachable at real rates

    def test_error_rate_stationary(self):
        """The per-write adjacent-line error rate is stable between the
        first and second half of a run (no drift in the injection model)."""
        wl_short = small_workload("stream", cores=2, length=400)
        wl_long = small_workload("stream", cores=2, length=1600)
        a = simulate(small_config(schemes.lazyc()), wl_short)
        b = simulate(small_config(schemes.lazyc()), wl_long)
        assert a.counters.avg_errors_per_adjacent_line == pytest.approx(
            b.counters.avg_errors_per_adjacent_line, rel=0.2
        )
