"""Property-based equivalence: fast bit kernels vs the scalar references.

The int-domain and batched kernels in :mod:`repro.pcm.line` claim to be
bit-for-bit and RNG-draw-for-draw identical to the original
``unpackbits``-based implementations (kept as ``_scalar_*``).  These
tests check that claim on random masks, edge probabilities, and empty
candidate sets under fixed seeds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LINE_BITS, LINE_WORDS
from repro.pcm import line as L

# Random 512-bit masks as (8,) uint64 arrays; bias toward sparse masks
# (the common case: a handful of disturbed cells) plus dense extremes.
words = st.integers(min_value=0, max_value=(1 << 64) - 1)
masks = st.one_of(
    st.lists(
        st.integers(0, LINE_BITS - 1), unique=True, max_size=24
    ).map(L.mask_from_positions),
    st.lists(words, min_size=LINE_WORDS, max_size=LINE_WORDS).map(
        lambda ws: np.array(ws, dtype=L.WORD_DTYPE)
    ),
)
probabilities = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.just(1e-12),
    st.just(1.0 - 1e-12),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestCountKernels:
    @given(masks)
    def test_popcount_matches_scalar(self, mask):
        assert L.popcount(mask) == L._scalar_popcount(mask)

    @given(masks)
    def test_popcount_int_matches_scalar(self, mask):
        assert L.popcount(L.to_int(mask)) == L._scalar_popcount(mask)

    @given(masks)
    def test_bit_positions_matches_scalar(self, mask):
        assert L.bit_positions(mask) == L._scalar_bit_positions(mask)

    @given(masks)
    def test_bit_positions_int_matches_scalar(self, mask):
        assert L.bit_positions_int(L.to_int(mask)) == L._scalar_bit_positions(mask)

    @given(st.lists(masks, max_size=6))
    def test_popcount_rows_matches_scalar(self, rows):
        stacked = (
            np.stack(rows)
            if rows
            else np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        )
        expected = [L._scalar_popcount(row) for row in rows]
        assert L.popcount_rows(stacked).tolist() == expected


class TestSampleMask:
    @settings(max_examples=200)
    @given(masks, probabilities, seeds)
    def test_sample_mask_matches_scalar(self, mask, p, seed):
        fast = L.sample_mask(mask, p, np.random.default_rng(seed))
        ref = L._scalar_sample_mask(mask, p, np.random.default_rng(seed))
        assert np.array_equal(fast, ref)

    @settings(max_examples=200)
    @given(masks, probabilities, seeds)
    def test_sample_mask_int_matches_scalar(self, mask, p, seed):
        fast = L.sample_mask_int(L.to_int(mask), p, np.random.default_rng(seed))
        ref = L._scalar_sample_mask(mask, p, np.random.default_rng(seed))
        assert fast == L.to_int(ref)

    @given(masks, probabilities, seeds)
    def test_rng_stream_position_matches_scalar(self, mask, p, seed):
        """Both paths must consume the exact same number of draws."""
        fast_rng = np.random.default_rng(seed)
        ref_rng = np.random.default_rng(seed)
        L.sample_mask(mask, p, fast_rng)
        L._scalar_sample_mask(mask, p, ref_rng)
        assert fast_rng.random() == ref_rng.random()

    def test_empty_candidates_draw_nothing(self):
        rng = np.random.default_rng(7)
        before = rng.bit_generator.state["state"]["state"]
        assert L.popcount(L.sample_mask(L.zero_line(), 0.5, rng)) == 0
        assert L.sample_mask_int(0, 0.5, rng) == 0
        assert rng.bit_generator.state["state"]["state"] == before

    def test_edge_probabilities_draw_nothing(self):
        mask = L.full_line()
        rng = np.random.default_rng(11)
        before = rng.bit_generator.state["state"]["state"]
        assert L.popcount(L.sample_mask(mask, 0.0, rng)) == 0
        assert np.array_equal(L.sample_mask(mask, 1.0, rng), mask)
        assert rng.bit_generator.state["state"]["state"] == before


class TestBatchedSamplers:
    """Batched kernels must equal sequential calls on one shared stream."""

    @settings(max_examples=150)
    @given(st.lists(masks, max_size=5), probabilities, seeds)
    def test_sample_masks_matches_sequential_scalar(self, rows, p, seed):
        stacked = (
            np.stack(rows)
            if rows
            else np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        )
        batched = L.sample_masks(stacked, p, np.random.default_rng(seed))
        seq_rng = np.random.default_rng(seed)
        for r, row in enumerate(rows):
            expected = L._scalar_sample_mask(row, p, seq_rng)
            assert np.array_equal(batched[r], expected)

    @settings(max_examples=150)
    @given(st.lists(masks, max_size=5), probabilities, seeds)
    def test_sample_masks_int_matches_sequential_scalar(self, rows, p, seed):
        values = [L.to_int(row) for row in rows]
        batched = L.sample_masks_int(values, p, np.random.default_rng(seed))
        seq_rng = np.random.default_rng(seed)
        for r, row in enumerate(rows):
            expected = L._scalar_sample_mask(row, p, seq_rng)
            assert batched[r] == L.to_int(expected)

    @given(st.lists(masks, max_size=5), seeds)
    def test_batched_stream_position_matches_sequential(self, rows, seed):
        stacked = (
            np.stack(rows)
            if rows
            else np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        )
        batched_rng = np.random.default_rng(seed)
        seq_rng = np.random.default_rng(seed)
        L.sample_masks(stacked, 0.5, batched_rng)
        for row in rows:
            L._scalar_sample_mask(row, 0.5, seq_rng)
        assert batched_rng.random() == seq_rng.random()

    def test_empty_batch(self):
        empty = np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        assert L.sample_masks(empty, 0.5, np.random.default_rng(0)).shape == (
            0,
            LINE_WORDS,
        )
        assert L.sample_masks_int([], 0.5, np.random.default_rng(0)) == []


class TestIntRoundTrip:
    @given(masks)
    def test_to_from_int(self, mask):
        assert np.array_equal(L.from_int(L.to_int(mask)), mask)

    @given(masks)
    def test_shift_kernels_match_array_forms(self, mask):
        value = L.to_int(mask)
        assert L.shift_left_int(value) == L.to_int(L.shift_left(mask))
        assert L.shift_right_int(value) == L.to_int(L.shift_right(mask))
        assert L.wordline_neighbours_int(value) == L.to_int(
            L.wordline_neighbours(mask)
        )
