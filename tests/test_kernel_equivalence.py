"""Property-based equivalence: fast bit kernels vs the scalar references.

The int-domain and batched kernels in :mod:`repro.pcm.line` claim to be
bit-for-bit and RNG-draw-for-draw identical to the original
``unpackbits``-based implementations (kept as ``_scalar_*``).  These
tests check that claim on random masks, edge probabilities, and empty
candidate sets under fixed seeds.
"""

from __future__ import annotations

import hashlib
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LINE_BITS, LINE_WORDS, FaultConfig, SystemConfig
from repro.core import schemes
from repro.pcm import line as L
from repro.pcm.din import DINEncoder

# Random 512-bit masks as (8,) uint64 arrays; bias toward sparse masks
# (the common case: a handful of disturbed cells) plus dense extremes.
words = st.integers(min_value=0, max_value=(1 << 64) - 1)
masks = st.one_of(
    st.lists(
        st.integers(0, LINE_BITS - 1), unique=True, max_size=24
    ).map(L.mask_from_positions),
    st.lists(words, min_size=LINE_WORDS, max_size=LINE_WORDS).map(
        lambda ws: np.array(ws, dtype=L.WORD_DTYPE)
    ),
)
probabilities = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.just(1e-12),
    st.just(1.0 - 1e-12),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestCountKernels:
    @given(masks)
    def test_popcount_matches_scalar(self, mask):
        assert L.popcount(mask) == L._scalar_popcount(mask)

    @given(masks)
    def test_popcount_int_matches_scalar(self, mask):
        assert L.popcount(L.to_int(mask)) == L._scalar_popcount(mask)

    @given(masks)
    def test_bit_positions_matches_scalar(self, mask):
        assert L.bit_positions(mask) == L._scalar_bit_positions(mask)

    @given(masks)
    def test_bit_positions_int_matches_scalar(self, mask):
        assert L.bit_positions_int(L.to_int(mask)) == L._scalar_bit_positions(mask)

    @given(st.lists(masks, max_size=6))
    def test_popcount_rows_matches_scalar(self, rows):
        stacked = (
            np.stack(rows)
            if rows
            else np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        )
        expected = [L._scalar_popcount(row) for row in rows]
        assert L.popcount_rows(stacked).tolist() == expected


class TestSampleMask:
    @settings(max_examples=200)
    @given(masks, probabilities, seeds)
    def test_sample_mask_matches_scalar(self, mask, p, seed):
        fast = L.sample_mask(mask, p, np.random.default_rng(seed))
        ref = L._scalar_sample_mask(mask, p, np.random.default_rng(seed))
        assert np.array_equal(fast, ref)

    @settings(max_examples=200)
    @given(masks, probabilities, seeds)
    def test_sample_mask_int_matches_scalar(self, mask, p, seed):
        fast = L.sample_mask_int(L.to_int(mask), p, np.random.default_rng(seed))
        ref = L._scalar_sample_mask(mask, p, np.random.default_rng(seed))
        assert fast == L.to_int(ref)

    @given(masks, probabilities, seeds)
    def test_rng_stream_position_matches_scalar(self, mask, p, seed):
        """Both paths must consume the exact same number of draws."""
        fast_rng = np.random.default_rng(seed)
        ref_rng = np.random.default_rng(seed)
        L.sample_mask(mask, p, fast_rng)
        L._scalar_sample_mask(mask, p, ref_rng)
        assert fast_rng.random() == ref_rng.random()

    def test_empty_candidates_draw_nothing(self):
        rng = np.random.default_rng(7)
        before = rng.bit_generator.state["state"]["state"]
        assert L.popcount(L.sample_mask(L.zero_line(), 0.5, rng)) == 0
        assert L.sample_mask_int(0, 0.5, rng) == 0
        assert rng.bit_generator.state["state"]["state"] == before

    def test_edge_probabilities_draw_nothing(self):
        mask = L.full_line()
        rng = np.random.default_rng(11)
        before = rng.bit_generator.state["state"]["state"]
        assert L.popcount(L.sample_mask(mask, 0.0, rng)) == 0
        assert np.array_equal(L.sample_mask(mask, 1.0, rng), mask)
        assert rng.bit_generator.state["state"]["state"] == before


class TestBatchedSamplers:
    """Batched kernels must equal sequential calls on one shared stream."""

    @settings(max_examples=150)
    @given(st.lists(masks, max_size=5), probabilities, seeds)
    def test_sample_masks_matches_sequential_scalar(self, rows, p, seed):
        stacked = (
            np.stack(rows)
            if rows
            else np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        )
        batched = L.sample_masks(stacked, p, np.random.default_rng(seed))
        seq_rng = np.random.default_rng(seed)
        for r, row in enumerate(rows):
            expected = L._scalar_sample_mask(row, p, seq_rng)
            assert np.array_equal(batched[r], expected)

    @settings(max_examples=150)
    @given(st.lists(masks, max_size=5), probabilities, seeds)
    def test_sample_masks_int_matches_sequential_scalar(self, rows, p, seed):
        values = [L.to_int(row) for row in rows]
        batched = L.sample_masks_int(values, p, np.random.default_rng(seed))
        seq_rng = np.random.default_rng(seed)
        for r, row in enumerate(rows):
            expected = L._scalar_sample_mask(row, p, seq_rng)
            assert batched[r] == L.to_int(expected)

    @given(st.lists(masks, max_size=5), seeds)
    def test_batched_stream_position_matches_sequential(self, rows, seed):
        stacked = (
            np.stack(rows)
            if rows
            else np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        )
        batched_rng = np.random.default_rng(seed)
        seq_rng = np.random.default_rng(seed)
        L.sample_masks(stacked, 0.5, batched_rng)
        for row in rows:
            L._scalar_sample_mask(row, 0.5, seq_rng)
        assert batched_rng.random() == seq_rng.random()

    def test_empty_batch(self):
        empty = np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        assert L.sample_masks(empty, 0.5, np.random.default_rng(0)).shape == (
            0,
            LINE_WORDS,
        )
        assert L.sample_masks_int([], 0.5, np.random.default_rng(0)) == []


class TestRowKernels:
    """Packed-row batch kernels vs their int/scalar references."""

    @given(st.lists(masks, max_size=6))
    def test_pack_unpack_round_trip(self, rows):
        values = [L.to_int(row) for row in rows]
        packed = L.pack_rows(values)
        assert packed.shape == (len(rows), LINE_WORDS)
        assert L.unpack_rows(packed) == values
        for r, row in enumerate(rows):
            assert np.array_equal(packed[r], row)

    def test_pack_empty(self):
        assert L.pack_rows([]).shape == (0, LINE_WORDS)
        assert L.unpack_rows(np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)) == []

    @settings(max_examples=150)
    @given(st.lists(masks, max_size=5), probabilities, seeds)
    def test_sample_masks_rows_matches_sequential_scalar(self, rows, p, seed):
        stacked = (
            np.stack(rows)
            if rows
            else np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        )
        batched = L.sample_masks_rows(stacked, p, np.random.default_rng(seed))
        seq_rng = np.random.default_rng(seed)
        for r, row in enumerate(rows):
            expected = L._scalar_sample_mask(row, p, seq_rng)
            assert np.array_equal(batched[r], expected)

    @given(st.lists(masks, max_size=5), seeds)
    def test_sample_masks_rows_stream_position(self, rows, seed):
        stacked = (
            np.stack(rows)
            if rows
            else np.zeros((0, LINE_WORDS), dtype=L.WORD_DTYPE)
        )
        batched_rng = np.random.default_rng(seed)
        seq_rng = np.random.default_rng(seed)
        L.sample_masks_rows(stacked, 0.5, batched_rng)
        for row in rows:
            L._scalar_sample_mask(row, 0.5, seq_rng)
        assert batched_rng.random() == seq_rng.random()

    @settings(max_examples=100)
    @given(st.lists(st.tuples(masks, masks), min_size=1, max_size=5))
    def test_din_rows_match_int_coders(self, pairs):
        encoder = DINEncoder()
        physical = np.stack([p for p, _ in pairs])
        data = np.stack([d for _, d in pairs])
        stored, flags = encoder.encode_stored_rows(physical, data)
        assert stored.shape == physical.shape and flags.shape == (len(pairs),)
        decoded = encoder.decode_rows(stored, flags)
        for r, (phys, raw) in enumerate(pairs):
            s_int, f_int = encoder.encode_stored_int(
                L.to_int(phys), L.to_int(raw)
            )
            assert L.to_int(stored[r]) == s_int
            assert int(flags[r]) == f_int
            assert L.to_int(decoded[r]) == encoder.decode_int(s_int, f_int)
            # The coding is a bijection row-wise too.
            assert L.to_int(decoded[r]) == L.to_int(raw)


# -- simulate_batch vs per-cell simulate_cell --------------------------------

_SCHEME_NAMES = ("baseline", "LazyC", "DIN", "LazyC+PreRead")
_BENCHES = ("mcf", "lbm")
_FAULT_PROFILES = (
    None,
    FaultConfig(enabled=True, seed=3, stuck_cells_per_line=0.5),
    FaultConfig(
        enabled=True, seed=5, stuck_cells_per_line=0.2, drift_flip_prob=0.02
    ),
)

#: Per-cell reference results, memoized across hypothesis examples (specs
#: are deterministic, so the reference is computed once per distinct spec).
_REFERENCE: dict = {}


def _tiny_spec(bench: str, scheme_name: str, fault_index: int):
    from repro.perf.cellspec import CellSpec

    config = SystemConfig(cores=2, seed=1).with_scheme(
        schemes.by_name(scheme_name)
    )
    faults = _FAULT_PROFILES[fault_index]
    if faults is not None:
        config = config.with_faults(faults)
    return CellSpec(bench=bench, length=48, config=config)


def _digest(result) -> str:
    return hashlib.sha256(pickle.dumps(result)).hexdigest()


def _reference_digest(spec) -> str:
    from repro.perf.cellspec import cache_key, simulate_cell

    key = cache_key(spec)
    digest = _REFERENCE.get(key)
    if digest is None:
        digest = _digest(simulate_cell(spec))
        _REFERENCE[key] = digest
    return digest


cell_choices = st.tuples(
    st.sampled_from(_BENCHES),
    st.sampled_from(_SCHEME_NAMES),
    st.integers(0, len(_FAULT_PROFILES) - 1),
)


class TestSimulateBatchEquivalence:
    """The batched path must be byte-identical to per-cell simulation."""

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(cell_choices, min_size=1, max_size=5),
        st.integers(min_value=1, max_value=3),
    )
    def test_ragged_batches_match_per_cell(self, choices, batch_cells):
        from repro.perf.batch import simulate_batch

        specs = [_tiny_spec(*choice) for choice in choices]
        expected = [_reference_digest(spec) for spec in specs]
        seen = []
        results = simulate_batch(
            specs,
            on_result=lambda index, result: seen.append(index),
            batch_cells=batch_cells,
        )
        assert [_digest(result) for result in results] == expected
        assert sorted(seen) == list(range(len(specs)))

    def test_batch_of_one(self):
        from repro.perf.batch import simulate_batch

        spec = _tiny_spec("mcf", "LazyC", 0)
        [result] = simulate_batch([spec], batch_cells=1)
        assert _digest(result) == _reference_digest(spec)

    def test_batch_with_one_faulted_cell(self):
        """A faulted cell rides the per-cell fallback, mates stay batched."""
        from repro.perf import batch as batchexec

        specs = [
            _tiny_spec("mcf", "baseline", 0),
            _tiny_spec("mcf", "LazyC", 1),  # active fault plan
            _tiny_spec("mcf", "DIN", 0),
        ]
        chunks, singles = batchexec.plan_batches(specs, batch_cells=8)
        assert singles == [1]
        assert sorted(i for chunk in chunks for i in chunk) == [0, 2]
        results = batchexec.simulate_batch(specs, batch_cells=8)
        assert [_digest(r) for r in results] == [
            _reference_digest(spec) for spec in specs
        ]

    def test_state_plane_on_off_identical(self, monkeypatch):
        """REPRO_STATE_PLANE=0 must not change a single byte."""
        from repro.pcm import stateplane
        from repro.perf.cellspec import simulate_cell

        spec = _tiny_spec("lbm", "LazyC+PreRead", 0)
        monkeypatch.setenv("REPRO_STATE_PLANE", "0")
        stateplane.PLANE.reset()
        off = _digest(simulate_cell(spec))
        monkeypatch.setenv("REPRO_STATE_PLANE", "1")
        stateplane.PLANE.reset()
        on = _digest(simulate_cell(spec))
        warm = _digest(simulate_cell(spec))  # pooled state, second touch
        stateplane.PLANE.reset()
        assert off == on == warm


class TestIntRoundTrip:
    @given(masks)
    def test_to_from_int(self, mask):
        assert np.array_equal(L.from_int(L.to_int(mask)), mask)

    @given(masks)
    def test_shift_kernels_match_array_forms(self, mask):
        value = L.to_int(mask)
        assert L.shift_left_int(value) == L.to_int(L.shift_left(mask))
        assert L.shift_right_int(value) == L.to_int(L.shift_right(mask))
        assert L.wordline_neighbours_int(value) == L.to_int(
            L.wordline_neighbours(mask)
        )
