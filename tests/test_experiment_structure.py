"""Structural tests for the remaining experiment modules (tiny scale)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    figure11,
    figure13,
    figure14,
    figure15,
    figure19,
    node_sensitivity,
)

ONE = ("stream",)


class TestFigure11Structure:
    def test_columns_and_gmean_row(self):
        result = figure11.run_experiment(length=150, workloads=ONE)
        assert result.headers[0] == "workload"
        assert result.headers[1] == "DIN"
        assert result.rows[-1][0] == "gmean"
        assert result.metrics["baseline"] == 1.0
        # (1:2) tracks DIN within noise even at tiny scale.
        assert result.metrics["(1:2)"] == pytest.approx(
            result.metrics["DIN"], rel=0.1
        )


class TestFigure13Structure:
    def test_levels_and_monotone_head(self):
        result = figure13.run_experiment(length=150, workloads=ONE,
                                         levels=(0, 6))
        assert result.metrics["ecp6"] >= result.metrics["ecp0"] * 0.99


class TestFigure14Structure:
    def test_fresh_point_is_unity(self):
        result = figure14.run_experiment(
            length=150, workloads=ONE, points=(0.0, 1.0)
        )
        assert result.metrics["life0"] == 1.0
        assert result.metrics["life100"] > 0.8


class TestFigure15Structure:
    def test_queue_columns(self):
        result = figure15.run_experiment(length=150, workloads=ONE,
                                         sizes=(8, 32))
        assert "wq8" in result.metrics and "wq32" in result.metrics
        assert result.metrics["wq32_vs_din"] >= 1.0  # never faster than DIN


class TestFigure19Structure:
    def test_scheme_columns(self):
        result = figure19.run_experiment(length=150, workloads=ONE)
        for name in ("VnC", "eager", "WC", "LazyC", "WC+LazyC"):
            assert name in result.metrics
        assert result.metrics["VnC"] == 1.0
        # Cancellation's own contribution is WC relative to eager.
        assert result.metrics["WC"] >= result.metrics["eager"] * 0.9


class TestNodeSensitivityStructure:
    def test_rows_per_node(self):
        result = node_sensitivity.run_experiment(
            length=150, workloads=ONE, nodes=(20.0,)
        )
        assert len(result.rows) == 1
        assert result.rows[0][0] == "20 nm"
