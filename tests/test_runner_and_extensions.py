"""Tests for the experiment runner, ablations, and the node extension."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.experiments import ablation, node_sensitivity
from repro.experiments.runner import EXPERIMENTS, main


class TestRunnerRegistry:
    def test_every_figure_registered(self):
        for name in (
            "table1",
            "capacity",
            "overhead",
            "figure4",
            "figure5",
            "figure11",
            "figure12",
            "figure13",
            "figure14",
            "figure15",
            "figure16",
            "figure17",
            "figure18",
            "figure19",
        ):
            assert name in EXPERIMENTS

    def test_extensions_registered(self):
        assert "ablation-ecp-density" in EXPERIMENTS
        assert "node-sensitivity" in EXPERIMENTS

    def test_unknown_name_rejected(self, capsys):
        assert main(["nope"]) == 2

    def test_analytic_subset_runs(self, capsys):
        assert main(["table1", "overhead"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "overhead" in out


class TestAblationsSmall:
    def test_ecp_density(self):
        result = ablation.run_ecp_density_ablation(
            length=200, workloads=("mcf",)
        )
        assert result.metrics["low_density"] >= result.metrics["dense"] * 0.98

    def test_read_priority(self):
        result = ablation.run_read_priority_ablation(
            length=200, workloads=("mcf",)
        )
        assert result.metrics["WP+LazyC"] > 1.0

    def test_din_ablation(self):
        result = ablation.run_din_ablation(length=200, workloads=("mcf",))
        assert result.metrics["without_din"] > result.metrics["with_din"]

    def test_weak_cell_ablation_preserves_rate(self):
        result = ablation.run_weak_cell_ablation(
            length=250, workloads=("mcf",), fractions=(0.25, 1.0)
        )
        # Mean error rate preserved within sampling noise.
        assert result.metrics["f0.25"] == pytest.approx(
            result.metrics["f1"], rel=0.25
        )

    def test_energy_experiment_shape(self):
        from repro.experiments import energy

        result = energy.run_experiment(length=200, workloads=("mcf",))
        assert result.metrics["DIN"] == 0.0
        assert result.metrics["baseline"] >= result.metrics["LazyC"] > 0.0

    def test_encoders_experiment_shape(self):
        from repro.experiments import encoders

        result = encoders.run_experiment(length=150, workloads=("mcf",))
        assert result.metrics["fnw_cells"] <= result.metrics["raw_cells"]
        assert result.metrics["din_vulnerable"] < result.metrics["raw_vulnerable"]


class TestNodeSensitivitySmall:
    def test_rates_scale_with_node(self):
        result = node_sensitivity.run_experiment(
            length=200, workloads=("mcf",), nodes=(30.0, 20.0, 16.0)
        )
        m = result.metrics
        assert m["p_bl_16"] > m["p_bl_20"] > m["p_bl_30"] > 0.0
        assert m["p_bl_20"] == pytest.approx(0.115, abs=1e-6)


class TestExampleScripts:
    @pytest.mark.parametrize(
        "args",
        [
            ["examples/device_scaling_study.py"],
            ["examples/quickstart.py", "wrf", "120"],
            ["examples/read_priority_study.py", "xalan", "120"],
            ["examples/priority_isolation.py", "wrf", "100"],
        ],
    )
    def test_example_runs(self, args):
        proc = subprocess.run(
            [sys.executable] + args,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip()
