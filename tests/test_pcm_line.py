"""Tests for line mask utilities — the simulator's bit-twiddling kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LINE_BITS, LINE_WORDS
from repro.pcm import line as L

positions = st.lists(
    st.integers(min_value=0, max_value=LINE_BITS - 1), unique=True, max_size=64
)


class TestBasics:
    def test_zero_line(self):
        assert L.popcount(L.zero_line()) == 0

    def test_full_line(self):
        assert L.popcount(L.full_line()) == LINE_BITS

    def test_random_line_shape(self, rng):
        line = L.random_line(rng)
        assert line.shape == (LINE_WORDS,)
        assert line.dtype == L.WORD_DTYPE

    @given(positions)
    def test_positions_roundtrip(self, pos):
        mask = L.mask_from_positions(pos)
        assert L.bit_positions(mask) == sorted(pos)
        assert L.popcount(mask) == len(pos)

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ValueError):
            L.mask_from_positions([LINE_BITS])

    @given(positions, st.integers(0, LINE_BITS - 1))
    def test_get_set_bit(self, pos, probe):
        mask = L.mask_from_positions(pos)
        assert L.get_bit(mask, probe) == (1 if probe in pos else 0)
        L.set_bit(mask, probe, 1)
        assert L.get_bit(mask, probe) == 1
        L.set_bit(mask, probe, 0)
        assert L.get_bit(mask, probe) == 0


class TestShifts:
    def test_shift_does_not_cross_word_boundary(self):
        """Word-line adjacency exists only within a chip's 64-bit segment."""
        mask = L.mask_from_positions([63])
        assert L.bit_positions(L.shift_left(mask)) == []
        assert L.bit_positions(L.shift_right(mask)) == [62]
        mask = L.mask_from_positions([64])
        assert L.bit_positions(L.shift_right(mask)) == []
        assert L.bit_positions(L.shift_left(mask)) == [65]

    def test_wordline_neighbours_interior(self):
        mask = L.mask_from_positions([10])
        assert L.bit_positions(L.wordline_neighbours(mask)) == [9, 11]

    @given(positions)
    def test_neighbour_count_bounded(self, pos):
        mask = L.mask_from_positions(pos)
        neighbours = L.wordline_neighbours(mask)
        assert L.popcount(neighbours) <= 2 * len(pos)


class TestSampling:
    def test_probability_zero_empty(self, rng):
        out = L.sample_mask(L.full_line(), 0.0, rng)
        assert L.popcount(out) == 0

    def test_probability_one_identity(self, rng):
        mask = L.mask_from_positions([1, 5, 100, 511])
        out = L.sample_mask(mask, 1.0, rng)
        assert L.bit_positions(out) == [1, 5, 100, 511]

    def test_subset_of_candidates(self, rng):
        mask = L.mask_from_positions(list(range(0, 512, 3)))
        out = L.sample_mask(mask, 0.5, rng)
        assert L.popcount(out & ~mask) == 0

    def test_empirical_rate(self, rng):
        """Sampling the full line many times approximates the probability."""
        p = 0.115
        total = 0
        trials = 200
        for _ in range(trials):
            total += L.popcount(L.sample_mask(L.full_line(), p, rng))
        mean = total / (trials * LINE_BITS)
        assert mean == pytest.approx(p, rel=0.15)

    def test_empty_candidates(self, rng):
        assert L.popcount(L.sample_mask(L.zero_line(), 0.9, rng)) == 0
