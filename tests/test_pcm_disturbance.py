"""Tests for the Arrhenius disturbance model and Table 1 reproduction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.pcm import constants as C
from repro.pcm.disturbance import (
    DisturbanceModel,
    _solve_arrhenius,
    default_disturbance_model,
    table1_rates,
)
from repro.pcm.thermal import Medium


@pytest.fixture
def model() -> DisturbanceModel:
    return default_disturbance_model()


class TestTable1:
    def test_wordline_rate(self, model):
        assert model.error_rate(310.0) == pytest.approx(0.099, abs=1e-9)

    def test_bitline_rate(self, model):
        assert model.error_rate(320.0) == pytest.approx(0.115, abs=1e-9)

    def test_full_table(self):
        rates = table1_rates()
        assert rates["word-line"]["error_rate"] == pytest.approx(0.099, abs=1e-6)
        assert rates["bit-line"]["error_rate"] == pytest.approx(0.115, abs=1e-6)
        assert rates["word-line"]["temperature_c"] == pytest.approx(310.0, abs=1e-6)
        assert rates["bit-line"]["temperature_c"] == pytest.approx(320.0, abs=1e-6)


class TestModelShape:
    def test_zero_below_crystallisation(self, model):
        assert model.error_rate(299.9) == 0.0
        assert model.error_rate(25.0) == 0.0

    def test_monotone_above_threshold(self, model):
        rates = [model.error_rate(t) for t in (305, 310, 320, 350, 400)]
        assert rates == sorted(rates)

    def test_capped_at_melt(self, model):
        assert model.error_rate(800.0) == model.error_rate(C.MELT_C)

    @given(st.floats(min_value=300.0, max_value=600.0))
    def test_probability_range(self, temp):
        rate = default_disturbance_model().error_rate(temp)
        assert 0.0 <= rate < 1.0

    def test_activation_energy_physical(self, model):
        """Calibrated Ea should be a plausible sub-eV activation energy."""
        assert 0.1 < model.activation_energy_ev < 2.0

    def test_error_rate_at_combines_models(self, model):
        rate = model.error_rate_at(40.0, Medium.GST, 20.0)
        assert rate == pytest.approx(0.115, abs=1e-9)
        assert model.error_rate_at(80.0, Medium.GST, 20.0) == 0.0

    def test_invalid_pulse_rejected(self):
        with pytest.raises(ConfigError):
            DisturbanceModel(pulse_s=0.0)


class TestCachedSolver:
    """The lru_cache on _solve_arrhenius must not change the calibration."""

    def test_cached_and_fresh_solutions_identical(self):
        cached = _solve_arrhenius()
        _solve_arrhenius.cache_clear()
        fresh = _solve_arrhenius()
        assert fresh == cached  # bit-identical, not approx

    def test_cache_is_hit_on_repeat_calls(self, model):
        _solve_arrhenius.cache_clear()
        model.error_rate(330.0)
        model.error_rate(340.0)
        info = _solve_arrhenius.cache_info()
        assert info.misses == 1
        assert info.hits >= 1

    def test_anchors_survive_caching(self, model):
        """Table 1 anchors through the cached path: 310°C → 9.9%, 320°C → 11.5%."""
        assert model.error_rate(C.ANCHOR_WORDLINE_TEMP_C) == pytest.approx(
            C.ANCHOR_WORDLINE_RATE, abs=1e-12
        )
        assert model.error_rate(C.ANCHOR_BITLINE_TEMP_C) == pytest.approx(
            C.ANCHOR_BITLINE_RATE, abs=1e-12
        )
