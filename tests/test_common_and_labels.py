"""Tests for experiments.common plumbing and system scheme labels."""

from __future__ import annotations

import pytest

from repro.core import schemes
from repro.core.system import SDPCMSystem
from repro.experiments.common import (
    ExperimentResult,
    add_gmean_row,
    core_count,
    paper_workload_names,
    trace_length,
    workload,
)
from repro.traces.profiles import WORKLOAD_ORDER
from tests.conftest import small_config


class TestEnvKnobs:
    def test_trace_length_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_LEN", raising=False)
        assert trace_length(777) == 777

    def test_trace_length_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "4242")
        assert trace_length() == 4242

    def test_core_count_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORES", "2")
        assert core_count() == 2


class TestWorkloadCache:
    def test_cache_returns_same_object(self):
        a = workload("wrf", 50, 1, 9)
        b = workload("wrf", 50, 1, 9)
        assert a is b

    def test_distinct_keys_distinct_objects(self):
        a = workload("wrf", 50, 1, 9)
        b = workload("wrf", 60, 1, 9)
        assert a is not b

    def test_paper_workload_names(self):
        assert paper_workload_names() == WORKLOAD_ORDER
        assert paper_workload_names(("mcf",)) == ["mcf"]


class TestExperimentResult:
    def test_gmean_row_skips_text_cells(self):
        result = ExperimentResult("t", ["w", "x"], rows=[["a", 2.0], ["b", 8.0]])
        add_gmean_row(result)
        assert result.rows[-1][0] == "gmean"
        assert result.rows[-1][1] == pytest.approx(4.0)

    def test_gmean_row_on_empty(self):
        result = ExperimentResult("t", ["w", "x"])
        add_gmean_row(result)
        assert result.rows == []

    def test_render_includes_notes(self):
        result = ExperimentResult("t", ["a"], rows=[["x"]], notes=["hello"])
        assert "note: hello" in result.render()


class TestSchemeLabels:
    @pytest.mark.parametrize(
        "factory, fragment",
        [
            (schemes.wp_lazyc, "WP"),
            (schemes.write_pausing, "WP"),
            (schemes.eager, "eager"),
            (schemes.wc_lazyc, "WC"),
            (schemes.lazyc_dense_ecp, "denseECP"),
        ],
    )
    def test_labels_mention_components(self, factory, fragment):
        label = SDPCMSystem(small_config(factory()))._scheme_label()
        assert fragment in label

    def test_nm_label(self):
        label = SDPCMSystem(small_config(schemes.nm_alloc(1, 2)))._scheme_label()
        assert "(1:2)" in label
