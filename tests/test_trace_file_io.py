"""Tests for trace serialisation round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.traces import file_io
from repro.traces.record import TraceRecord
from repro.traces.synthetic import generate_trace

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        is_write=st.booleans(),
        address=st.integers(0, 1 << 30).map(lambda a: a * 64),
        gap=st.integers(0, 10_000),
    ),
    max_size=50,
)


class TestRoundTrips:
    @given(records_strategy)
    @settings(max_examples=20, deadline=None)
    def test_npz_roundtrip(self, records):
        import tempfile, pathlib

        with tempfile.TemporaryDirectory() as d:
            path = pathlib.Path(d) / "t.npz"
            file_io.save_npz(records, path)
            assert file_io.load_npz(path) == records

    @given(records_strategy)
    @settings(max_examples=20, deadline=None)
    def test_text_roundtrip(self, records):
        import tempfile, pathlib

        with tempfile.TemporaryDirectory() as d:
            path = pathlib.Path(d) / "t.trace"
            file_io.save_text(records, path)
            assert file_io.load_text(path) == records

    def test_dispatch_by_extension(self, tmp_path):
        records = generate_trace("wrf", 50, seed=2)
        file_io.save(records, tmp_path / "a.npz")
        file_io.save(records, tmp_path / "a.trace")
        assert file_io.load(tmp_path / "a.npz") == records
        assert file_io.load(tmp_path / "a.trace") == records

    def test_real_trace_roundtrip(self, tmp_path):
        records = generate_trace("mcf", 500, seed=1)
        file_io.save_npz(records, tmp_path / "mcf.npz")
        loaded = file_io.load_npz(tmp_path / "mcf.npz")
        assert loaded == records


class TestTextFormat:
    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# header\n\nR 0x1000 5\nW 0x2000 0\n")
        records = file_io.load_text(path)
        assert len(records) == 2
        assert not records[0].is_write and records[1].is_write

    def test_byte_addresses_aligned_down(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("R 0x1007 0\n")
        assert file_io.load_text(path)[0].address == 0x1000

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("X 0x1000 5\n")
        with pytest.raises(TraceError):
            file_io.load_text(path)

    def test_bad_number_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("R zzz 5\n")
        with pytest.raises(TraceError):
            file_io.load_text(path)

    def test_missing_field_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(path, is_write=np.array([True]), address=np.array([0]))
        with pytest.raises(TraceError):
            file_io.load_npz(path)
