"""Unit tests for bank state and in-flight op bookkeeping."""

from __future__ import annotations

import pytest

from repro.mem.bank import BankState, InFlightOp
from repro.mem.request import (
    PausedWrite,
    PrereadSlot,
    Request,
    RequestKind,
    WriteEntry,
)
from repro.pcm.array import LineAddress


def entry(row=5, line=0):
    req = Request(RequestKind.WRITE, 0, LineAddress(0, row, line), 0)
    return WriteEntry(req)


class TestInFlightOp:
    def test_progress_and_remaining(self):
        op = InFlightOp(kind=RequestKind.WRITE, start=100, latency=800)
        assert op.end == 900
        assert op.remaining(100) == 800
        assert op.remaining(500) == 400
        assert op.remaining(1200) == 0
        assert op.progress(100) == 0.0
        assert op.progress(500) == pytest.approx(0.5)
        assert op.progress(1200) == 1.0

    def test_zero_latency_progress(self):
        op = InFlightOp(kind=RequestKind.READ, start=0, latency=0)
        assert op.progress(0) == 1.0


class TestBankState:
    def test_wq_full(self):
        bank = BankState(index=0, wq_capacity=2)
        assert not bank.wq_full
        bank.wq_append(entry(1))
        bank.wq_append(entry(2))
        assert bank.wq_full

    def test_find_write_returns_youngest(self):
        bank = BankState(index=0, wq_capacity=8)
        first, second = entry(5), entry(5)
        for e in (first, entry(6), second):
            bank.wq_append(e)
        found = bank.find_write((0, 5, 0))
        assert found is second

    def test_find_write_misses(self):
        bank = BankState(index=0, wq_capacity=8)
        bank.wq_append(entry(5))
        assert bank.find_write((0, 9, 0)) is None

    def test_busy_reflects_current(self):
        bank = BankState(index=0, wq_capacity=8)
        assert not bank.busy
        bank.current = InFlightOp(kind=RequestKind.READ, start=0, latency=400)
        assert bank.busy


class TestWriteEntry:
    def test_pending_preread_order(self):
        e = entry()
        a = PrereadSlot(addr=LineAddress(0, 4, 0))
        b = PrereadSlot(addr=LineAddress(0, 6, 0))
        e.slots = [a, b]
        assert e.pending_preread() is a
        a.done = True
        assert e.pending_preread() is b
        b.done = True
        assert e.pending_preread() is None
        assert e.prereads_complete()

    def test_paused_state_holds_commit(self):
        called = []
        e = entry()
        e.paused = PausedWrite(commit=lambda: called.append(1), remaining=300)
        e.paused.commit()
        assert called == [1]
        assert e.paused.remaining == 300
