"""End-of-trace quiesce semantics: buffered writes always land."""

from __future__ import annotations

import pytest

from repro.config import MemoryConfig, SchemeConfig, SystemConfig
from repro.core import schemes
from repro.core.system import SDPCMSystem
from repro.pcm import line as L
from repro.traces.profiles import profile
from repro.traces.record import TraceRecord
from repro.traces.workload import Workload


def write_only_workload(writes: int) -> Workload:
    records = [TraceRecord(True, i * 64, 0) for i in range(writes)]
    return Workload("w", [records], [profile("stream")])


class TestQuiesce:
    def test_buffered_writes_flush_after_cores_finish(self):
        """A trace that never fills the queue leaves writes buffered; the
        engine must still flush them so their array effects land."""
        cfg = SystemConfig(
            cores=1,
            memory=MemoryConfig(write_queue_entries=32),
            scheme=SchemeConfig(vnc=False),
            seed=1,
        )
        system = SDPCMSystem(cfg)
        system.run(write_only_workload(5))
        # All five lines of page 0 were physically written (row materialised
        # and the payloads committed).
        assert system.array.is_materialised(0, 0)

    def test_flush_effects_counted(self):
        cfg = SystemConfig(
            cores=1,
            memory=MemoryConfig(write_queue_entries=32),
            scheme=schemes.lazyc(),
            seed=1,
        )
        system = SDPCMSystem(cfg)
        res = system.run(write_only_workload(8))
        c = res.counters
        # Every write's VnC ran even though the core never waited for it.
        assert c.verifications > 0
        assert c.data_cell_writes_demand > 0

    def test_cycles_exclude_flush_tail(self):
        """CPI reflects core-visible time: the posted writes' drain happens
        after the last instruction retires."""
        cfg = SystemConfig(
            cores=1,
            memory=MemoryConfig(write_queue_entries=32),
            scheme=schemes.baseline(),
            seed=1,
        )
        res = SDPCMSystem(cfg).run(write_only_workload(8))
        # 8 posted writes at 1 cycle each: the core finished almost
        # immediately even though the flush took thousands of cycles.
        assert res.cycles <= 16
