"""Tests for strip marking and the (n:m) allocator manager (Section 4.4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc.nm_alloc import NMAllocManager
from repro.alloc.strips import (
    PAGES_PER_BLOCK,
    STRIPS_PER_BLOCK,
    adjacent_usage,
    is_no_use,
    no_use_positions,
    usable_fraction,
    used_strips_in_block,
)
from repro.config import PAGES_PER_STRIP
from repro.errors import AllocationError

ratios = st.tuples(st.integers(1, 8), st.integers(1, 8)).filter(
    lambda nm: nm[0] <= nm[1]
)


class TestStripMarking:
    def test_paper_2_3_example(self):
        """(2:3) marks the 2nd strip of each 3-strip group."""
        assert not is_no_use(0, 2, 3)
        assert is_no_use(1, 2, 3)
        assert not is_no_use(2, 2, 3)
        assert not is_no_use(3, 2, 3)
        assert is_no_use(4, 2, 3)

    def test_1_2_alternates(self):
        for s in range(20):
            assert is_no_use(s, 1, 2) == (s % 2 == 1)

    def test_1_1_marks_nothing(self):
        assert no_use_positions(1, 1) == frozenset()
        assert not any(is_no_use(s, 1, 1) for s in range(100))

    def test_groups_restart_at_block_boundary(self):
        """A group never spans a 64 MB block boundary."""
        last_of_block = STRIPS_PER_BLOCK - 1           # 1023 % 3 == 1 locally
        first_of_next = STRIPS_PER_BLOCK               # local index 0 -> used
        assert not is_no_use(first_of_next, 2, 3)
        assert is_no_use(first_of_next + 1, 2, 3)

    def test_usable_fraction(self):
        assert usable_fraction(1, 2) == pytest.approx(0.5, abs=0.001)
        assert usable_fraction(2, 3) == pytest.approx(2 / 3, abs=0.001)
        assert usable_fraction(1, 1) == 1.0

    @given(ratios)
    def test_usable_fraction_close_to_n_over_m(self, nm):
        n, m = nm
        assert usable_fraction(n, m) == pytest.approx(n / m, abs=0.01)

    def test_bad_ratio(self):
        with pytest.raises(AllocationError):
            no_use_positions(3, 2)
        with pytest.raises(AllocationError):
            no_use_positions(0, 2)


class TestAdjacentUsage:
    def test_2_3_figure9_rule(self):
        # strip 0 (mod 3 == 0): top forced (block edge), bottom is no-use.
        assert adjacent_usage(0, 2, 3) == (True, False)
        # strip 2 (mod 3 == 2): top no-use, bottom used.
        assert adjacent_usage(2, 2, 3) == (False, True)
        # strip 3 (mod 3 == 0): top used (strip 2), bottom no-use.
        assert adjacent_usage(3, 2, 3) == (True, False)

    def test_1_2_interior_never_verifies(self):
        assert adjacent_usage(2, 1, 2) == (False, False)
        assert adjacent_usage(4, 1, 2) == (False, False)

    def test_block_edges_forced(self):
        assert adjacent_usage(0, 1, 2)[0] is True
        last = STRIPS_PER_BLOCK - 2  # local 1022, even -> used under (1:2)
        assert adjacent_usage(last, 1, 2) == (False, False)

    def test_1_1_always_both(self):
        for s in (0, 1, 7, STRIPS_PER_BLOCK - 1):
            top, bottom = adjacent_usage(s, 1, 1)
            assert top and bottom

    def test_no_use_strip_rejected(self):
        with pytest.raises(AllocationError):
            adjacent_usage(1, 2, 3)

    @given(ratios, st.integers(0, 4 * STRIPS_PER_BLOCK - 1))
    @settings(max_examples=200)
    def test_used_neighbours_always_verified(self, nm, strip):
        """Safety property: every *used* neighbour of a used strip is
        verified — no disturbance into live data can go undetected."""
        n, m = nm
        if is_no_use(strip, n, m):
            return
        verify_top, verify_bottom = adjacent_usage(strip, n, m)
        local = strip % STRIPS_PER_BLOCK
        if local > 0 and not is_no_use(strip - 1, n, m):
            assert verify_top
        if local < STRIPS_PER_BLOCK - 1 and not is_no_use(strip + 1, n, m):
            assert verify_bottom


class TestNMAllocManager:
    def make(self):
        # 4 x 64 MB of frames.
        return NMAllocManager(total_frames=4 * PAGES_PER_BLOCK)

    def test_1_1_dense_allocation(self):
        mgr = self.make()
        frames = [mgr.allocate_frame(1, 1) for _ in range(32)]
        assert len(set(frames)) == 32

    def test_1_2_avoids_no_use_strips(self):
        mgr = self.make()
        frames = [mgr.allocate_frame(1, 2) for _ in range(200)]
        assert len(set(frames)) == 200
        for f in frames:
            assert not is_no_use(f // PAGES_PER_STRIP, 1, 2)

    def test_2_3_avoids_no_use_strips(self):
        mgr = self.make()
        frames = [mgr.allocate_frame(2, 3) for _ in range(500)]
        for f in frames:
            assert not is_no_use(f // PAGES_PER_STRIP, 2, 3)

    def test_strip_allocation(self):
        mgr = self.make()
        base = mgr.allocate_strip(1, 2)
        assert base % PAGES_PER_STRIP == 0
        assert not is_no_use(base // PAGES_PER_STRIP, 1, 2)

    def test_mixed_allocators_disjoint(self):
        mgr = self.make()
        a = {mgr.allocate_frame(1, 2) for _ in range(100)}
        b = {mgr.allocate_frame(2, 3) for _ in range(100)}
        c = {mgr.allocate_frame(1, 1) for _ in range(100)}
        assert not (a & b) and not (a & c) and not (b & c)

    def test_free_and_block_reclaim(self):
        mgr = self.make()
        frames = [mgr.allocate_frame(1, 2) for _ in range(PAGES_PER_STRIP)]
        assert mgr.owned_blocks(1, 2) == 1
        for f in frames:
            mgr.free_frame(f, 1, 2)
        # The strip returned but the 64 MB block is only reclaimed when all
        # its used strips are free; one partial strip keeps it owned.
        assert mgr.owned_blocks(1, 2) in (0, 1)

    def test_free_foreign_frame_rejected(self):
        mgr = self.make()
        with pytest.raises(AllocationError):
            mgr.free_frame(12345, 1, 2)

    def test_exhaustion(self):
        mgr = NMAllocManager(total_frames=PAGES_PER_BLOCK)
        # (1:2) usable = half the block; allocating beyond must fail.
        usable = PAGES_PER_BLOCK // 2
        for _ in range(usable):
            mgr.allocate_frame(1, 2)
        with pytest.raises(AllocationError):
            mgr.allocate_frame(1, 2)
