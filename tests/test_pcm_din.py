"""Tests for the DIN word-line encoder substitute."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pcm import line as L
from repro.pcm.din import DINEncoder, wordline_vulnerable_mask
from repro.pcm.differential_write import plan_write
from repro.config import TimingConfig


@pytest.fixture
def encoder() -> DINEncoder:
    return DINEncoder()


def random_lines(seed):
    rng = np.random.default_rng(seed)
    return L.random_line(rng), L.random_line(rng)


class TestBijection:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_roundtrip(self, seed):
        encoder = DINEncoder()
        physical, data = random_lines(seed)
        enc = encoder.encode(physical, data)
        decoded = encoder.decode(enc.stored, enc.flags)
        assert np.array_equal(decoded, data)

    def test_identity_when_no_flags(self, encoder):
        physical, data = random_lines(0)
        assert np.array_equal(encoder.decode(data, 0), data)

    def test_all_flags_invert(self, encoder):
        physical, data = random_lines(1)
        flags = (1 << 64) - 1
        decoded = encoder.decode(data, flags)
        assert np.array_equal(decoded, ~data)


class TestEffectiveness:
    def test_never_worse_than_raw(self, encoder):
        """The encoder's chosen image never has more weighted cost; its
        vulnerable count is reported against the raw encoding."""
        for seed in range(20):
            physical, data = random_lines(seed)
            enc = encoder.encode(physical, data)
            # Selection is by weighted cost, so vulnerability alone may tie,
            # but the reported counts must be consistent with the stored image.
            assert enc.vulnerable_encoded == encoder.vulnerable_pairs(
                physical, enc.stored
            )

    def test_reduces_vulnerability_on_average(self, encoder):
        raw_total, enc_total = 0, 0
        for seed in range(50):
            physical, data = random_lines(seed)
            enc = encoder.encode(physical, data)
            raw_total += enc.vulnerable_raw
            enc_total += enc.vulnerable_encoded
        assert enc_total <= raw_total

    def test_low_entropy_write_prefers_raw(self, encoder):
        """A write changing almost nothing should rarely invert bytes —
        inversion costs a full byte of programming."""
        rng = np.random.default_rng(3)
        physical = L.random_line(rng)
        data = physical.copy()
        L.set_bit(data, 17, L.get_bit(data, 17) ^ 1)
        enc = encoder.encode(physical, data)
        assert bin(enc.flags).count("1") <= 2


class TestVulnerableMask:
    def test_idle_zero_next_to_reset(self):
        # physical: bit 5 set (will be RESET), bit 6 zero and idle.
        physical = L.mask_from_positions([5])
        new = L.zero_line()
        plan = plan_write(physical, new, TimingConfig())
        mask = wordline_vulnerable_mask(
            physical, plan.reset_mask, plan.reset_mask | plan.set_mask
        )
        positions = L.bit_positions(mask)
        assert 6 in positions and 4 in positions
        assert 5 not in positions

    def test_crystalline_neighbour_not_vulnerable(self):
        physical = L.mask_from_positions([5, 6])
        new = L.mask_from_positions([6])  # RESET bit 5 only, 6 stays 1
        plan = plan_write(physical, new, TimingConfig())
        mask = wordline_vulnerable_mask(
            physical, plan.reset_mask, plan.reset_mask | plan.set_mask
        )
        assert 6 not in L.bit_positions(mask)

    def test_written_neighbour_not_vulnerable(self):
        """A cell being programmed in the same write is not idle."""
        physical = L.mask_from_positions([5, 6])
        new = L.zero_line()  # RESET both 5 and 6
        plan = plan_write(physical, new, TimingConfig())
        mask = wordline_vulnerable_mask(
            physical, plan.reset_mask, plan.reset_mask | plan.set_mask
        )
        assert 6 not in L.bit_positions(mask)
        assert 5 not in L.bit_positions(mask)
