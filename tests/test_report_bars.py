"""Tests for the ASCII bar renderer used by the CLI compare output."""

from __future__ import annotations

import pytest

from repro.stats.report import format_bars


class TestFormatBars:
    def test_bars_scale_to_max(self):
        text = format_bars("T", [("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[0] == "== T =="
        a_line = next(l for l in lines if l.lstrip().startswith("a"))
        b_line = next(l for l in lines if l.lstrip().startswith("b"))
        assert b_line.count("#") == 10
        assert a_line.count("#") == 5

    def test_values_printed(self):
        text = format_bars("T", [("x", 1.234)])
        assert "1.23" in text

    def test_zero_values(self):
        text = format_bars("T", [("x", 0.0)])
        assert "#" not in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_bars("T", [])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bars("T", [("x", -1.0)])
