"""End-to-end tests of the event engine and the SDPCMSystem facade."""

from __future__ import annotations

import pytest

from repro.config import SchemeConfig, SystemConfig, TimingConfig
from repro.core import schemes
from repro.core.engine import EventLoop
from repro.core.results import geometric_mean
from repro.core.system import SDPCMSystem, simulate
from repro.errors import SimulationError
from tests.conftest import small_config, small_workload


class TestEventLoop:
    def test_ordering(self):
        loop = EventLoop()
        seen = []
        loop.schedule(10, lambda t: seen.append(("b", t)))
        loop.schedule(5, lambda t: seen.append(("a", t)))
        loop.schedule(10, lambda t: seen.append(("c", t)))
        loop.run()
        assert seen == [("a", 5), ("b", 10), ("c", 10)]

    def test_past_events_clamped_to_now(self):
        loop = EventLoop()
        seen = []

        def first(t):
            loop.schedule(t - 100, lambda t2: seen.append(t2))

        loop.schedule(50, first)
        loop.run()
        assert seen == [50]

    def test_nested_scheduling(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1, lambda t: loop.schedule(t + 1, seen.append))
        loop.run()
        assert seen == [2]


class TestSystemRuns:
    def test_basic_run_completes(self):
        cfg = small_config()
        res = SDPCMSystem(cfg).run(small_workload())
        assert res.cycles > 0
        assert res.instructions > 0
        assert res.cpi > 1.0
        assert len(res.per_core_cpi) == 2

    def test_single_shot(self):
        cfg = small_config()
        system = SDPCMSystem(cfg)
        wl = small_workload()
        system.run(wl)
        with pytest.raises(SimulationError):
            system.run(wl)

    def test_core_count_mismatch_rejected(self):
        cfg = small_config(cores=4)
        with pytest.raises(SimulationError):
            SDPCMSystem(cfg).run(small_workload(cores=2))

    def test_deterministic(self):
        wl = small_workload()
        a = simulate(small_config(), wl)
        b = simulate(small_config(), wl)
        assert a.cycles == b.cycles
        assert a.counters.bitline_errors == b.counters.bitline_errors

    def test_seed_changes_outcome(self):
        # Use a contention-heavy workload: the seed changes payloads and
        # disturbance sampling, which only perturbs *timing* when bank
        # occupancy actually collides with reads.
        wl = small_workload("mcf", length=400)
        a = simulate(small_config(), wl)
        b = simulate(small_config(seed=99), wl)
        assert (a.cycles, a.counters.bitline_errors) != (
            b.cycles,
            b.counters.bitline_errors,
        )

    def test_all_reads_and_writes_serviced(self):
        wl = small_workload(length=200)
        res = simulate(small_config(), wl)
        c = res.counters
        expected_writes = sum(1 for t in wl.traces for r in t if r.is_write)
        expected_reads = wl.total_references - expected_writes
        assert c.demand_writes == expected_writes
        assert c.demand_reads == expected_reads

    def test_scheme_labels(self):
        assert SDPCMSystem(
            small_config(schemes.din())
        )._scheme_label() == "DIN"
        assert SDPCMSystem(
            small_config(schemes.baseline())
        )._scheme_label() == "baseline-VnC"
        label = SDPCMSystem(small_config(schemes.all_combined()))._scheme_label()
        assert "LazyC" in label and "PreRead" in label and "(2:3)" in label


class TestSchemeBehaviour:
    def test_din_faster_than_baseline(self):
        wl = small_workload("mcf", length=400)
        din = simulate(small_config(schemes.din()), wl)
        base = simulate(small_config(schemes.baseline()), wl)
        assert din.cpi < base.cpi
        assert din.speedup_over(base) > 1.0

    def test_lazyc_between_baseline_and_din(self):
        wl = small_workload("mcf", length=400)
        din = simulate(small_config(schemes.din()), wl)
        lazy = simulate(small_config(schemes.lazyc()), wl)
        base = simulate(small_config(schemes.baseline()), wl)
        assert din.cpi <= lazy.cpi <= base.cpi

    def test_1_2_no_verifications(self):
        wl = small_workload("mcf", length=400)
        res = simulate(small_config(schemes.nm_alloc(1, 2)), wl)
        # Interior (1:2) strips need no VnC; only rare 64MB-edge strips do.
        assert res.counters.verifications <= res.counters.demand_writes * 0.05
        assert res.counters.corrections == 0 or res.counters.verifications > 0

    def test_2_3_halves_verifications(self):
        wl = small_workload("mcf", length=400)
        full = simulate(small_config(schemes.baseline()), wl)
        ratio = simulate(small_config(schemes.nm_alloc(2, 3)), wl)
        # (2:3) verifies ~1 adjacent line per write instead of ~2.
        assert ratio.counters.verifications < 0.7 * full.counters.verifications

    def test_preread_reduces_pre_write_reads(self):
        wl = small_workload("stream", length=400)
        base = simulate(small_config(schemes.baseline()), wl)
        pre = simulate(small_config(schemes.preread()), wl)
        assert pre.counters.preread_hits + pre.counters.preread_forwards > 0
        assert pre.counters.pre_write_reads < base.counters.pre_write_reads

    def test_wc_cancels_writes(self):
        wl = small_workload("mcf", length=400)
        wc = simulate(small_config(schemes.write_cancellation()), wl)
        assert wc.counters.writes_cancelled > 0

    def test_wordline_errors_counted_everywhere(self):
        wl = small_workload("mcf", length=300)
        for scheme in (schemes.din(), schemes.baseline()):
            res = simulate(small_config(scheme), wl)
            assert res.counters.wordline_vulnerable_cells > 0


class TestResults:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0]) == 2.0
        with pytest.raises(SimulationError):
            geometric_mean([])
        with pytest.raises(SimulationError):
            geometric_mean([0.0, 1.0])

    def test_speedup_metric(self):
        wl = small_workload(length=200)
        base = simulate(small_config(schemes.baseline()), wl)
        assert base.speedup_over(base) == pytest.approx(1.0)

    def test_base_cpi_scales_runtime(self):
        wl = small_workload(length=200)
        slow = simulate(
            small_config(timing=TimingConfig(base_cpi=16.0)), wl
        )
        fast = simulate(
            small_config(timing=TimingConfig(base_cpi=1.0)), wl
        )
        assert slow.cycles > fast.cycles
