"""Start-Gap composed with the WD model: remapping changes adjacency.

The motivation for carrying Start-Gap as a substrate (Section 7): wear
levelling rotates which device rows sit next to which data, so a WD design
must verify against *device* addresses.  These tests demonstrate the
adjacency churn and that our device-level VnC is oblivious to the logical
remapping (it only ever sees device coordinates).
"""

from __future__ import annotations

import pytest

from repro.alloc.startgap import StartGap


class TestAdjacencyChurn:
    def test_logical_neighbours_drift_apart(self):
        """Two logically adjacent lines stay physically adjacent under
        rotation (the whole region shifts), EXCEPT around the gap, which
        splits a pair — the churn a WD design must tolerate."""
        region = StartGap(lines=16, gap_write_interval=1)
        slots = region.slots
        split_seen = False
        for step in range(40):
            mapping = region.mapping_snapshot()
            gaps = [
                min(d, slots - d)  # circular distance over the N+1 slots
                for d in (
                    abs(mapping[i + 1] - mapping[i])
                    for i in range(len(mapping) - 1)
                )
            ]
            # At most one logical pair is split by the gap (distance 2);
            # all others remain at circular distance 1.
            assert sorted(set(gaps)) in ([1], [1, 2])
            if 2 in gaps:
                split_seen = True
            region.note_write(step % 16)
        assert split_seen

    def test_device_slot_reuse_over_laps(self):
        """After a full rotation, a fixed logical line has occupied many
        distinct device slots — the wear-levelling effect."""
        region = StartGap(lines=8, gap_write_interval=1)
        slots = set()
        for _ in range(200):
            slots.add(region.device_of(3))
            region.note_write(0)
        assert len(slots) >= 8

    def test_gap_overhead_accounting(self):
        region = StartGap(lines=8, gap_write_interval=4)
        moves = 0
        for _ in range(40):
            moves += region.note_write(0)
        assert moves == 10
        # One copy-write per move: 2.5% write overhead at interval 4*8...
        # the interval controls the overhead/levelling trade-off.
        assert region.total_moves == moves
