"""Hand-computed cycle accounting for scripted scenarios.

These pin the timing model exactly: for deterministic configurations
(disturbance off) every latency is computable by hand from Table 2's
numbers, so a regression here means the timing semantics changed.
"""

from __future__ import annotations

import pytest

from repro.config import (
    DisturbanceConfig,
    MemoryConfig,
    SchemeConfig,
    SystemConfig,
    TimingConfig,
)
from repro.core.system import SDPCMSystem
from repro.traces.profiles import profile
from repro.traces.record import TraceRecord
from repro.traces.workload import Workload

READ = 400
RESET = 400
SET = 800


def quiet_config(scheme=None, base_cpi=1.0):
    return SystemConfig(
        cores=1,
        timing=TimingConfig(base_cpi=base_cpi),
        memory=MemoryConfig(),
        disturbance=DisturbanceConfig(enabled=False),
        scheme=scheme or SchemeConfig(vnc=False),
        seed=0,
    )


def run(records, scheme=None, base_cpi=1.0):
    workload = Workload("script", [records], [profile("wrf")])
    return SDPCMSystem(quiet_config(scheme, base_cpi)).run(workload)


class TestReadTiming:
    def test_single_read_finishes_at_read_latency(self):
        res = run([TraceRecord(False, 0, 0)])
        # Issue at t=0, data at t=400, core advances at 400.
        assert res.cycles == READ

    def test_two_reads_same_bank_serialise(self):
        res = run(
            [TraceRecord(False, 0, 0), TraceRecord(False, 64, 0)]
        )
        assert res.cycles == 2 * READ

    def test_gap_adds_base_cpi_cycles(self):
        res = run([TraceRecord(False, 0, 100)], base_cpi=4.0)
        assert res.cycles == 400 * 1 + 100 * 4

    def test_reads_to_different_banks_overlap(self):
        # Pages 0 and 1 map to banks 0 and 1; the in-order core still
        # serialises them (it blocks on each read), so no overlap for one
        # core — this pins the in-order semantics.
        res = run(
            [TraceRecord(False, 0, 0), TraceRecord(False, 4096, 0)]
        )
        assert res.cycles == 2 * READ


class TestWriteTiming:
    def test_posted_write_does_not_block(self):
        """A buffered write costs the core only the 1-cycle issue step."""
        res = run([TraceRecord(True, 0, 0), TraceRecord(False, 4096, 0)])
        # Write posts at t=0 (bank 0); read to bank 1 issues at t=1.
        assert res.cycles == 1 + READ

    def test_read_behind_unrelated_write_same_bank(self):
        """Without VnC and below the drain threshold, the write stays
        buffered: the read proceeds immediately."""
        res = run(
            [TraceRecord(True, 0, 0), TraceRecord(False, 64, 0)],
            scheme=SchemeConfig(vnc=False),
        )
        # Read to the same line? No - different line (64B offset), same
        # bank. The write is only buffered (not draining), so the read
        # starts at t=1.
        assert res.cycles == 1 + READ

    def test_read_forwarded_from_queue(self):
        res = run([TraceRecord(True, 0, 0), TraceRecord(False, 0, 0)])
        from repro.mem.controller import FORWARD_READ_CYCLES

        assert res.cycles == 1 + FORWARD_READ_CYCLES


class TestVnCTiming:
    def test_drain_write_with_vnc_blocks_read(self):
        """Fill a 2-entry queue so it drains; the next read waits for one
        full VnC composite op."""
        records = [
            TraceRecord(True, 0, 0),        # line 0 of page 0 (bank 0)
            TraceRecord(True, 64, 0),       # fills the 2-entry queue: drain
            TraceRecord(False, 64 * 32, 0),  # line 32 of page 0: same bank
        ]
        cfg = SystemConfig(
            cores=1,
            timing=TimingConfig(base_cpi=1.0),
            memory=MemoryConfig(write_queue_entries=2),
            disturbance=DisturbanceConfig(
                p_bitline=0.0, p_wordline=0.0
            ),
            scheme=SchemeConfig(vnc=True),
            seed=0,
        )
        workload = Workload(
            "script",
            [records],
            [profile("wrf")],
        )
        res = SDPCMSystem(cfg).run(workload)
        # Page 0 maps to frame 0 = bank 0, row 0 (top edge: one verified
        # neighbour).  The drain starts at t=1 with one VnC op of exactly
        # 1 pre-read + 1 SET-round write + 1 verify read = 1600 cycles; the
        # read issued at t=2 waits for it, then takes 400 cycles.
        assert res.cycles == 1 + (2 * READ + SET) + READ
        c = res.counters
        assert c.drains == 1
        assert c.verifications >= 1

    def test_vnc_op_component_latency(self):
        """Direct check: a clean (error-free) VnC op = 2 pre-reads +
        write rounds + 2 verify reads for an interior row."""
        import numpy as np

        from repro.core.vnc import VnCExecutor
        from repro.ecp.chip import ECPChip
        from repro.mem.request import Request, RequestKind, WriteEntry
        from repro.pcm.array import LineAddress, PCMArray

        array = PCMArray(banks=16, rows_per_bank=8, seed=0)
        executor = VnCExecutor(
            array=array,
            ecp=ECPChip(6),
            scheme=SchemeConfig(vnc=True),
            timing=TimingConfig(),
            disturbance=DisturbanceConfig(p_bitline=0.0, p_wordline=0.0),
            counters=__import__(
                "repro.stats.counters", fromlist=["Counters"]
            ).Counters(),
            rng=np.random.default_rng(0),
            flip_fractions=[0.12],
        )
        request = Request(RequestKind.WRITE, 0, LineAddress(0, 4, 0), 0)
        entry = WriteEntry(request, slots=executor.preread_slots(request))
        op = executor.execute(entry, 0)
        # <=128 changed cells with some SETs: exactly one SET round.
        assert op.latency == 4 * READ + SET
