"""Tests for scheme factories and the LazyC / PreRead / WC policy helpers."""

from __future__ import annotations

import pytest

from repro.config import SchemeConfig
from repro.core import schemes
from repro.core.lazy_correction import decide, expected_corrections_per_write
from repro.core.preread import PrereadHardwareCost, preread_coverage
from repro.core.write_cancellation import CancellationPolicy, expected_extra_errors
from repro.errors import ConfigError
from repro.stats.counters import Counters


class TestSchemeFactories:
    def test_figure11_lineup(self):
        assert list(schemes.FIGURE11_SCHEMES) == [
            "DIN",
            "baseline",
            "LazyC",
            "LazyC+PreRead",
            "LazyC+(2:3)",
            "LazyC+PreRead+(2:3)",
            "(1:2)",
        ]

    def test_din_has_no_vnc(self):
        s = schemes.din()
        assert s.wd_free_bitlines and not s.vnc and not s.needs_vnc

    def test_baseline_needs_vnc(self):
        assert schemes.baseline().needs_vnc

    def test_1_2_needs_no_vnc(self):
        assert not schemes.nm_alloc(1, 2).needs_vnc

    def test_2_3_needs_vnc(self):
        assert schemes.nm_alloc(2, 3).needs_vnc

    def test_by_name_roundtrip(self):
        for name in list(schemes.FIGURE11_SCHEMES) + ["WC", "WC+LazyC", "PreRead"]:
            assert isinstance(schemes.by_name(name), SchemeConfig)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            schemes.by_name("nope")

    def test_wd_free_with_vnc_rejected(self):
        with pytest.raises(ConfigError):
            SchemeConfig(wd_free_bitlines=True, vnc=True)

    def test_ratio_sweep(self):
        sweep = schemes.nm_ratio_schemes()
        assert set(sweep) == {"(1:2)", "(2:3)", "(3:4)", "(7:8)"}


class TestLazyPolicy:
    def test_skip_condition(self):
        assert decide(occupied=4, new_errors=2, capacity=6).absorb
        assert not decide(occupied=5, new_errors=2, capacity=6).absorb
        assert decide(occupied=0, new_errors=0, capacity=0).absorb

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            decide(-1, 0, 6)

    def test_expected_corrections_shape(self):
        """The analytic Figure 12 estimate must fall steeply with capacity."""
        import math

        curve = [
            expected_corrections_per_write(2.0, n, rewrite_interval=2.0)
            for n in (0, 2, 4, 6, 8)
        ]
        assert curve[0] == pytest.approx(2 * (1 - math.exp(-2.0)), abs=1e-9)
        assert all(a >= b for a, b in zip(curve, curve[1:]))
        assert curve[0] > 1.0
        assert curve[3] < 0.3

    def test_hard_errors_shift_curve(self):
        healthy = expected_corrections_per_write(2.0, 6, 2.0, hard_errors=0)
        aged = expected_corrections_per_write(2.0, 6, 2.0, hard_errors=2)
        assert aged >= healthy


class TestPrereadHelpers:
    def test_hardware_cost_matches_paper(self):
        cost = PrereadHardwareCost(queue_entries=32)
        assert cost.total_bytes == pytest.approx(4096, abs=16)
        assert cost.original_buffer_bytes == 2048
        assert cost.buffer_bits_per_entry == 2 * (512 + 1)

    def test_coverage(self):
        c = Counters()
        c.preread_hits = 6
        c.preread_forwards = 2
        c.pre_write_reads = 2
        assert preread_coverage(c) == pytest.approx(0.8)
        assert preread_coverage(Counters()) == 0.0


class TestCancellationPolicy:
    def test_threshold_rule(self):
        policy = CancellationPolicy(threshold=0.25)
        assert policy.may_cancel(elapsed=0, latency=800)
        assert policy.may_cancel(elapsed=500, latency=800)
        assert not policy.may_cancel(elapsed=700, latency=800)
        assert not policy.may_cancel(elapsed=0, latency=0)

    def test_wasted_cycles(self):
        policy = CancellationPolicy()
        assert policy.wasted_cycles(300, 800) == 300
        assert policy.wasted_cycles(900, 800) == 800

    def test_extra_errors_model(self):
        base = expected_extra_errors(2.0, cancellations=0.0)
        heavy = expected_extra_errors(2.0, cancellations=1.0)
        assert base == 2.0 and heavy == 3.0
        with pytest.raises(ConfigError):
            expected_extra_errors(-1.0, 0.0)
