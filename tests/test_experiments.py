"""Smoke + shape tests for the experiment harness (small traces).

These run the real experiment code at reduced scale and assert the
*qualitative* paper shapes (who wins, directionality), not absolute
numbers — EXPERIMENTS.md records the full-scale quantitative comparison.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    capacity,
    figure4,
    figure5,
    figure12,
    figure16,
    figure17,
    figure18,
    overhead,
    table1,
)

SMALL = dict(length=250, workloads=("mcf", "gemsFDTD"))


class TestAnalytic:
    def test_table1(self):
        result = table1.run_experiment()
        assert result.metrics["word-line_rate"] == pytest.approx(0.099, abs=1e-6)
        assert result.metrics["bit-line_rate"] == pytest.approx(0.115, abs=1e-6)
        assert result.metrics["wd_onset_nm"] == pytest.approx(54.0, abs=0.5)
        assert "Table 1" in result.render()

    def test_capacity(self):
        result = capacity.run_experiment()
        assert result.metrics["capacity_gain"] == pytest.approx(0.8, abs=0.01)
        assert result.metrics["big_chip_reduction"] == pytest.approx(0.2, abs=0.02)

    def test_overhead(self):
        result = overhead.run_experiment()
        assert result.metrics["preread_bytes"] == pytest.approx(4096, abs=16)


class TestSimulated:
    def test_figure4_shape(self):
        result = figure4.run_experiment(**SMALL)
        # Bit-line errors dominate word-line residual errors (the paper's
        # core motivation), and gemsFDTD sits lowest.
        assert result.metrics["mean_adjacent_errors"] > result.metrics[
            "mean_wordline_errors"
        ]
        rows = {r[0]: r for r in result.rows}
        assert rows["gemsFDTD"][3] < rows["mcf"][3]

    def test_figure5_ordering(self):
        result = figure5.run_experiment(**SMALL)
        # total >= verification-only >= 1.
        assert (
            result.metrics["total_overhead"]
            >= result.metrics["verification_overhead"]
            >= 0.0
        )

    def test_figure12_monotone(self):
        result = figure12.run_experiment(length=250, workloads=("mcf",),
                                         levels=(0, 4, 8))
        assert result.metrics["ecp0"] > result.metrics["ecp4"] >= result.metrics["ecp8"]

    def test_figure16_monotone_in_ratio(self):
        result = figure16.run_experiment(length=250, workloads=("mcf",))
        assert (
            result.metrics["1:2"]
            >= result.metrics["2:3"]
            >= result.metrics["3:4"]
            >= result.metrics["7:8"] * 0.98  # allow simulation noise at the top
        )

    def test_figure17_18_lifetimes(self):
        r17 = figure17.run_experiment(length=250, workloads=("mcf",))
        r18 = figure18.run_experiment(length=250, workloads=("mcf",))
        assert 0.0 <= r17.metrics["mean_degradation"] < 0.05
        assert r18.metrics["mean_degradation"] >= r17.metrics["mean_degradation"]
        # DIMM lifetime remains data-chip-bound despite ECP-chip wear.
        assert 10.0 * (1.0 - r18.metrics["mean_degradation"]) > 1.0
