"""Determinism of hard-error seeding across lifetime fractions.

The Figure 14 sweep isolates the hard-error effect because seeding uses a
dedicated per-line RNG stream: two runs at the same lifetime fraction are
identical, and runs at different fractions share the same disturbance
sample path wherever hard errors don't interfere.
"""

from __future__ import annotations

import pytest

from repro.core import schemes
from repro.core.system import SDPCMSystem
from tests.conftest import small_config, small_workload


def run(lifetime: float, seed: int = 7):
    cfg = small_config(schemes.lazyc())
    wl = small_workload("mcf", cores=2, length=300, seed=seed)
    return SDPCMSystem(cfg, lifetime_fraction=lifetime).run(wl)


class TestLifetimeSeeding:
    def test_same_fraction_reproducible(self):
        a = run(0.75)
        b = run(0.75)
        assert a.cycles == b.cycles
        assert a.counters.ecp_overflows == b.counters.ecp_overflows

    def test_fresh_run_unaffected_by_seeding_machinery(self):
        """lifetime 0.0 takes the fast path: no per-line seeding at all."""
        a = run(0.0)
        b = run(0.0)
        assert a.cycles == b.cycles

    def test_aged_run_has_hard_occupancy(self):
        cfg = small_config(schemes.lazyc())
        wl = small_workload("mcf", cores=2, length=300, seed=7)
        system = SDPCMSystem(cfg, lifetime_fraction=1.0)
        system.run(wl)
        hard = sum(
            line.hard_count for line in system.ecp._lines.values()
        )
        assert hard > 0

    def test_more_age_more_overflows(self):
        """End-of-life occupancy leaves fewer spares: overflow corrections
        can only go up (statistically; generous tolerance)."""
        fresh = run(0.0)
        aged = run(1.0)
        assert (
            aged.counters.ecp_overflows
            >= fresh.counters.ecp_overflows
        )
