"""The sweep service: journal durability, admission, dedup, drain, replay.

In-process tests run the real daemon (real sockets, real engine) on an
ephemeral port inside a background thread; the chaos class kills and
restarts actual ``repro serve`` subprocesses to prove the crash-recovery
contract end to end.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro import resilience
from repro.errors import ConfigError
from repro.perf import engine
from repro.perf.cache import ResultCache
from repro.perf.cellspec import simulate_cell
from repro.service import ServiceClient, ServiceDaemon
from repro.service import daemon as daemon_mod
from repro.service.admission import AdmissionController
from repro.service.client import ServiceUnreachable
from repro.service.jobs import (
    Job,
    ServiceStats,
    build_spec,
    result_digest,
    validate_params,
)
from repro.service.journal import JobJournal

REPO_ROOT = Path(__file__).resolve().parent.parent

SMALL = {"bench": "mcf", "length": 200, "scheme": "baseline",
         "cores": 2, "seed": 1}


def small_params(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return params


# ---------------------------------------------------------------------------
# journal


class TestJobJournal:
    def test_append_replay_roundtrip_unions_fields(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.append("k1", "accepted", params=SMALL, deadline_s=None)
        journal.append("k1", "running")
        journal.append("k2", "accepted", params=small_params(seed=2))
        journal.close()

        views = JobJournal(tmp_path / "j.jsonl").replay()
        assert set(views) == {"k1", "k2"}
        # Latest state wins, but the accepted-record fields survive.
        assert views["k1"]["state"] == "running"
        assert views["k1"]["params"] == SMALL
        assert views["k2"]["state"] == "accepted"

    def test_torn_tail_is_counted_and_skipped(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.append("k1", "accepted", params=SMALL)
        journal.append("k1", "done", result={"digest": "d"})
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"t": 1, "job": "k2", "state": "acc')  # torn append

        views = journal.replay()
        assert journal.torn_lines == 1
        assert set(views) == {"k1"}
        assert views["k1"]["state"] == "done"

    def test_garbage_state_is_torn_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.append("k1", "accepted", params=SMALL)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"job": "k1", "state": "exploded"}) + "\n")
        assert journal.replay()["k1"]["state"] == "accepted"
        assert journal.torn_lines == 1

    def test_live_jobs_excludes_terminal(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.append("done-job", "accepted", params=SMALL)
        journal.append("done-job", "done", result={})
        journal.append("failed-job", "accepted", params=SMALL)
        journal.append("failed-job", "failed", error={})
        journal.append("stuck-job", "running", params=SMALL)
        assert set(journal.live_jobs()) == {"stuck-job"}

    def test_compact_demotes_live_and_drops_terminal(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.append("finished", "accepted", params=SMALL)
        journal.append("finished", "done", result={"digest": "d"})
        journal.append("interrupted", "accepted",
                       params=small_params(seed=9))
        journal.append("interrupted", "running")
        assert journal.compact() == 1

        views = journal.replay()
        assert set(views) == {"interrupted"}
        # Demoted: whatever progress the run had made died with it.
        assert views["interrupted"]["state"] == "accepted"
        assert views["interrupted"]["params"] == small_params(seed=9)

    def test_compact_with_no_live_jobs_removes_file(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.append("k", "accepted", params=SMALL)
        journal.append("k", "done", result={})
        assert journal.compact() == 0
        assert not journal.path.exists()

    def test_replay_of_missing_journal_is_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "never-written.jsonl")
        assert journal.replay() == {}
        assert journal.compact() == 0

    def test_unknown_state_append_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown journal state"):
            JobJournal(tmp_path / "j.jsonl").append("k", "paused")


# ---------------------------------------------------------------------------
# params / job identity


class TestValidateParams:
    def test_defaults_applied(self):
        params = validate_params({"bench": "mcf", "length": 100})
        assert params == {"bench": "mcf", "length": 100,
                          "scheme": "baseline", "cores": 2, "seed": 1}

    def test_same_params_same_key(self):
        a = Job.from_params(validate_params(small_params()))
        b = Job.from_params(validate_params(small_params()))
        c = Job.from_params(validate_params(small_params(seed=2)))
        assert a.key == b.key != c.key

    @pytest.mark.parametrize("payload,match", [
        ({"length": 100}, "missing"),
        ({"bench": "mcf"}, "missing"),
        ({"bench": "nosuch", "length": 100}, "unknown workload"),
        ({"bench": "mcf", "length": "long"}, "must be an integer"),
        ({"bench": "mcf", "length": True}, "must be an integer"),
        ({"bench": "mcf", "length": 0}, "must be >= 1"),
        ({"bench": "mcf", "length": 100, "cores": 0}, "must be >= 1"),
        ({"bench": 7, "length": 100}, "must be a string"),
    ])
    def test_malformed_payloads_raise_config_error(self, payload, match):
        with pytest.raises(ConfigError, match=match):
            validate_params(payload)

    def test_unknown_scheme_raises(self):
        with pytest.raises(ConfigError):
            validate_params(small_params(scheme="nosuch"))


# ---------------------------------------------------------------------------
# admission


class TestAdmission:
    def test_accepts_under_bound_when_healthy(self):
        ctrl = AdmissionController(queue_max=2, retry_after_s=1.0,
                                   stats=ServiceStats())
        assert ctrl.check(queue_depth=0, draining=False) is None
        assert ctrl.check(queue_depth=1, draining=False) is None

    def test_queue_full_sheds_429(self):
        stats = ServiceStats()
        ctrl = AdmissionController(queue_max=2, retry_after_s=3.0,
                                   stats=stats)
        shed = ctrl.check(queue_depth=2, draining=False)
        assert shed.status == 429
        payload = shed.payload()
        assert payload["retryable"] is True
        assert payload["category"] == "resource"
        assert payload["retry_after_s"] == 3.0
        assert stats.shed_queue_full == 1

    def test_draining_sheds_503(self):
        stats = ServiceStats()
        ctrl = AdmissionController(queue_max=2, stats=stats)
        shed = ctrl.check(queue_depth=0, draining=True)
        assert shed.status == 503
        assert shed.payload()["category"] == "execution"
        assert stats.shed_draining == 1

    def test_open_breaker_sheds_503(self):
        stats = ServiceStats()
        ctrl = AdmissionController(queue_max=2, stats=stats)
        resilience.breaker.breaker("kernel").trip("service admission test")
        try:
            shed = ctrl.check(queue_depth=0, draining=False)
        finally:
            resilience.reset_all()
        assert shed.status == 503
        assert "breaker:kernel" in shed.error
        assert shed.payload()["retryable"] is True
        assert stats.shed_degraded == 1

    def test_queue_max_below_one_rejected(self):
        with pytest.raises(ValueError, match="queue_max must be >= 1"):
            AdmissionController(queue_max=0)


# ---------------------------------------------------------------------------
# engine stats scoping (daemon satellite: per-job deltas)


class TestScopedStats:
    def test_sequential_scopes_report_independent_deltas(self, tmp_path):
        runner = engine.CellRunner(
            jobs=1, cache=ResultCache(tmp_path / "c", enabled=True)
        )
        spec = build_spec(validate_params(small_params()))

        with engine.scoped_stats() as first:
            runner.run_cells([spec])
        with engine.scoped_stats() as second:
            runner.run_cells([spec])

        assert first.delta.simulated == 1
        assert first.delta.cache_hits == 0
        # Same spec again: pure cache hit, and the second scope does not
        # inherit the first run's counters.
        assert second.delta.simulated == 0
        assert second.delta.cache_hits == 1
        # The global accumulator still has both (scopes never reset it).
        assert engine.STATS.simulated >= 1
        assert engine.STATS.cache_hits >= 1

    def test_snapshot_since_field_wise(self):
        baseline = engine.STATS.snapshot()
        engine.STATS.simulated += 3
        engine.STATS.cache_hits += 1
        delta = engine.STATS.since(baseline)
        assert delta.simulated == 3
        assert delta.cache_hits == 1
        assert delta.deduplicated == 0


# ---------------------------------------------------------------------------
# cache writer lifecycle (daemon satellite: flush + restart after drain)


class TestCacheWriterLifecycle:
    def test_close_writer_joins_thread_and_persists(self, tmp_path):
        cache = ResultCache(tmp_path / "c", enabled=True)
        spec = build_spec(validate_params(small_params()))
        result = simulate_cell(spec)
        cache.store_async("some-key", result)
        writer = cache._writer
        assert writer is not None and writer.alive()
        cache.close_writer()
        assert cache._writer is None
        assert not writer.alive()
        assert cache.load("some-key") is not None

    def test_store_async_restarts_writer_after_close(self, tmp_path):
        cache = ResultCache(tmp_path / "c", enabled=True)
        spec = build_spec(validate_params(small_params()))
        result = simulate_cell(spec)
        cache.store_async("k1", result)
        cache.close_writer()
        # A drained daemon must be able to take new work again.
        cache.store_async("k2", result)
        assert cache._writer is not None and cache._writer.alive()
        cache.flush()
        assert cache.load("k2") is not None
        cache.close_writer()

    def test_close_writer_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path / "c", enabled=True)
        cache.close_writer()
        cache.close_writer()


# ---------------------------------------------------------------------------
# in-process daemon integration


@contextmanager
def running_daemon(service_dir, **kwargs):
    kwargs.setdefault("drain_s", 10.0)
    daemon = ServiceDaemon(port=0, service_dir=service_dir, **kwargs)
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    assert daemon.started.wait(10), "daemon never came up"
    client = ServiceClient(port=daemon.bound_port, timeout_s=60)
    try:
        yield daemon, client
    finally:
        daemon.request_shutdown()
        thread.join(20)
        assert not thread.is_alive(), "daemon failed to drain"


@contextmanager
def blocked_execution():
    """Make daemon job execution block until the caller releases it."""
    release = threading.Event()
    started = threading.Event()
    original = daemon_mod._run_spec

    def _blocking(runner, spec):
        started.set()
        assert release.wait(30), "test never released the blocked job"
        return original(runner, spec)

    daemon_mod._run_spec = _blocking
    try:
        yield started, release
    finally:
        release.set()
        daemon_mod._run_spec = original


class TestDaemonIntegration:
    def test_submit_wait_serves_byte_identical_result(self, tmp_path):
        params = validate_params(small_params())
        want = result_digest(simulate_cell(build_spec(params)))
        with running_daemon(tmp_path / "svc") as (_daemon, client):
            status, doc = client.submit(small_params(), wait=True)
        assert status == 200
        assert doc["state"] == "done"
        assert doc["dedup"] is False
        assert doc["result"]["digest"] == want
        assert doc["result"]["engine"]["simulated"] == 1

    def test_duplicate_spec_joins_inflight_job(self, tmp_path):
        with running_daemon(tmp_path / "svc") as (daemon, client):
            with blocked_execution() as (started, release):
                s1, d1 = client.submit(small_params())
                assert s1 == 202 and d1["dedup"] is False
                assert started.wait(10)
                s2, d2 = client.submit(small_params())
                assert s2 == 202 and d2["dedup"] is True
                assert d2["job"] == d1["job"]
                release.set()
                final = client.wait_for_job(d1["job"], timeout_s=60)
            assert final["state"] == "done"
            assert daemon.stats.accepted == 1
            assert daemon.stats.dedup_hits == 1
            # One journal lifecycle, not two.
            accepted = [
                line for line in
                daemon.journal.path.read_text().splitlines()
                if json.loads(line)["state"] == "accepted"
            ]
            assert len(accepted) == 1

    def test_finished_job_dedups_instantly(self, tmp_path):
        with running_daemon(tmp_path / "svc") as (_daemon, client):
            client.submit(small_params(), wait=True)
            status, doc = client.submit(small_params())
            assert status == 200  # terminal already
            assert doc["dedup"] is True
            assert doc["result"]["digest"]

    def test_queue_full_sheds_429_with_taxonomy(self, tmp_path):
        with running_daemon(tmp_path / "svc", queue_max=1) as (
            daemon, client
        ):
            with blocked_execution() as (started, release):
                client.submit(small_params())
                assert started.wait(10)
                # Head-of-line occupies the one admission slot; a second
                # distinct spec must be shed, classified, retryable.
                status, doc = client.submit(small_params(seed=5))
                assert status == 429
                assert doc["retryable"] is True
                assert doc["category"] == "resource"
                assert doc["retry_after_s"] > 0
                release.set()
            assert daemon.stats.shed_queue_full == 1

    def test_open_breaker_sheds_503(self, tmp_path):
        with running_daemon(tmp_path / "svc") as (daemon, client):
            resilience.breaker.breaker("kernel").trip("service test")
            try:
                status, doc = client.submit(small_params())
            finally:
                resilience.reset_all()
            assert status == 503
            assert "breaker:kernel" in doc["error"]
            assert doc["retryable"] is True
            assert daemon.stats.shed_degraded == 1

    def test_draining_daemon_sheds_503(self, tmp_path):
        with running_daemon(tmp_path / "svc") as (daemon, client):
            with blocked_execution() as (started, release):
                _s, doc = client.submit(small_params())
                assert started.wait(10)
                daemon.request_shutdown()
                deadline = time.monotonic() + 5
                while not daemon.draining and time.monotonic() < deadline:
                    time.sleep(0.01)
                status, shed = client.submit(small_params(seed=6))
                assert status == 503
                assert "draining" in shed["error"]
                assert shed["retryable"] is True
                release.set()
        # The in-flight job still finished inside the drain window
        # (the context manager above joins the drained daemon).
        assert daemon._jobs[doc["job"]].state == "done"
        assert daemon.stats.completed == 1
        assert daemon.stats.shed_draining == 1

    def test_queue_deadline_expires_stale_jobs(self, tmp_path):
        with running_daemon(tmp_path / "svc") as (daemon, client):
            with blocked_execution() as (started, release):
                client.submit(small_params())
                assert started.wait(10)
                _s, doc = client.submit(small_params(seed=7),
                                        deadline_s=0.05)
                time.sleep(0.3)  # out-wait the TTL while blocked
                release.set()
                final = client.wait_for_job(doc["job"], timeout_s=30)
            assert final["state"] == "failed"
            assert "deadline expired" in final["error"]["error"]
            assert final["error"]["retryable"] is True
            assert daemon.stats.expired == 1

    def test_malformed_submissions_get_400(self, tmp_path):
        with running_daemon(tmp_path / "svc") as (_daemon, client):
            status, doc = client.submit({"bench": "nosuch", "length": 10})
            assert status == 400
            assert doc["category"] == "config"
            assert doc["retryable"] is False
            status, doc = client.submit(small_params(length="long"))
            assert status == 400
            status, _doc = client.submit(
                small_params(), deadline_s=-1
            )
            assert status == 400

    def test_unknown_routes_and_jobs_get_404(self, tmp_path):
        with running_daemon(tmp_path / "svc") as (_daemon, client):
            assert client.job("no-such-key")[0] == 404
            assert client.request("GET", "/nope")[0] == 404
            assert client.request("GET", "/jobs")[0] == 405
            assert client.request("POST", "/healthz")[0] == 405

    def test_healthz_and_stats_shape(self, tmp_path):
        with running_daemon(tmp_path / "svc") as (daemon, client):
            client.submit(small_params(), wait=True)
            status, health = client.healthz()
            assert status == 200
            assert health["status"] == "ok"
            service = health["service"]
            assert service["stats"]["completed"] == 1
            assert service["queue_depth"] == 0
            assert service["draining"] is False
            assert service["jobs"]["done"] == 1
            _status, stats = client.stats()
            assert stats["service"]["stats"]["accepted"] == 1
            assert stats["engine"]["simulated"] >= 1

    def test_journal_replay_reexecutes_interrupted_job(self, tmp_path):
        """A journal left by a dead daemon replays to completion."""
        params = validate_params(small_params(seed=11))
        job = Job.from_params(params)
        want = result_digest(simulate_cell(job.spec))
        service_dir = tmp_path / "svc"
        # Simulate the wreckage of a SIGKILLed daemon: accepted+running
        # on disk, no terminal record.
        journal = JobJournal(service_dir / "journal.jsonl")
        journal.append(job.key, "accepted", params=params, deadline_s=None)
        journal.append(job.key, "running")
        journal.close()

        with running_daemon(service_dir) as (daemon, client):
            final = client.wait_for_job(job.key, timeout_s=60)
            assert final["state"] == "done"
            assert final["replayed"] is True
            assert final["result"]["digest"] == want
            assert daemon.stats.journal_replays == 1

    def test_replay_drops_unparseable_params(self, tmp_path):
        service_dir = tmp_path / "svc"
        journal = JobJournal(service_dir / "journal.jsonl")
        journal.append("bad-job", "accepted",
                       params={"bench": "nosuch", "length": 1})
        journal.close()
        with running_daemon(service_dir) as (daemon, client):
            assert client.job("bad-job")[0] == 404
            assert daemon.stats.journal_replays == 0

    def test_client_distinguishes_no_daemon_from_rejection(self):
        client = ServiceClient(port=1, timeout_s=0.5)  # nothing listens
        with pytest.raises(ServiceUnreachable):
            client.healthz()


# ---------------------------------------------------------------------------
# subprocess chaos: SIGKILL replay, concurrent clients, SIGTERM drain


@pytest.mark.chaos
class TestServiceChaos:
    def _spawn(self, tmp_path, name="svc"):
        portfile = tmp_path / f"{name}.port"
        portfile.unlink(missing_ok=True)
        env = dict(
            os.environ,
            PYTHONPATH=str(REPO_ROOT / "src"),
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--portfile", str(portfile),
             "--service-dir", str(tmp_path / "svc-dir"),
             "--jobs", "2", "--drain-s", "20"],
            env=env, cwd=REPO_ROOT, start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        deadline = time.monotonic() + 30
        while not portfile.exists() and time.monotonic() < deadline:
            if proc.poll() is not None:
                raise AssertionError(
                    f"daemon died on startup:\n{proc.communicate()[0]}"
                )
            time.sleep(0.05)
        assert portfile.exists(), "daemon never published its port"
        return proc, ServiceClient(port=int(portfile.read_text()),
                                   timeout_s=120)

    def test_concurrent_clients_share_one_execution(self, tmp_path):
        """Three clients, two unique specs; the duplicate joins."""
        proc, client = self._spawn(tmp_path)
        try:
            payloads = [small_params(), small_params(),
                        small_params(seed=2)]
            docs = [None] * 3

            def _submit(i):
                _status, docs[i] = ServiceClient(
                    port=client.port, timeout_s=120
                ).submit(payloads[i], wait=True)

            threads = [threading.Thread(target=_submit, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert all(doc is not None and doc["state"] == "done"
                       for doc in docs)
            # The two identical specs converged on one job + one digest.
            assert docs[0]["job"] == docs[1]["job"]
            assert docs[0]["result"]["digest"] == docs[1]["result"]["digest"]
            assert docs[2]["job"] != docs[0]["job"]
            _status, stats = client.stats()
            svc = stats["service"]["stats"]
            assert svc["accepted"] == 2
            assert svc["dedup_hits"] == 1
        finally:
            proc.send_signal(signal.SIGTERM)
            out = proc.communicate(timeout=60)[0]
        assert proc.returncode == 0, out

    def test_sigkill_midjob_replays_byte_identical(self, tmp_path):
        """The acceptance chaos drill: SIGKILL mid-job, restart, replay.

        The replayed result must be byte-identical to a clean local
        computation of the same spec — the service layer cannot perturb
        simulation semantics even across a crash boundary.
        """
        params = validate_params(small_params(length=4000, seed=3))
        job = Job.from_params(params)

        proc, client = self._spawn(tmp_path, name="first")
        _status, doc = client.submit(dict(params))
        assert doc["job"] == job.key
        # Wait until the job is observably running, then murder the
        # daemon with no chance to say goodbye.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.job(job.key)[1].get("state") == "running":
                break
            time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        proc2, client2 = self._spawn(tmp_path, name="second")
        try:
            final = client2.wait_for_job(job.key, timeout_s=120)
            assert final["state"] == "done"
            assert final["replayed"] is True
            want = result_digest(simulate_cell(build_spec(params)))
            assert final["result"]["digest"] == want
            _s, stats = client2.stats()
            assert stats["service"]["stats"]["journal_replays"] == 1
        finally:
            proc2.send_signal(signal.SIGTERM)
            out = proc2.communicate(timeout=60)[0]
        assert proc2.returncode == 0, out
        # A drained daemon leaves no shared-memory segments behind.
        shm_dir = Path("/dev/shm")
        if shm_dir.is_dir():
            leaked = [p for p in shm_dir.glob(f"*_{proc2.pid}_*")]
            assert not leaked, f"leaked shm segments: {leaked}"
        # And its journal compacted away the completed work.
        journal = JobJournal(tmp_path / "svc-dir" / "journal.jsonl")
        assert journal.live_jobs() == {}
