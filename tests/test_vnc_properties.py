"""Property-based tests on the VnC write path (hypothesis).

Random write sequences against a small array must preserve the reliability
invariant regardless of scheme, interleaving, cancellations, or ECP sizing:
after every committed operation, a used line's disturbed cells are exactly
the cells its ECP entries cover (LazyC) or empty (correcting schemes).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import DisturbanceConfig, SchemeConfig, TimingConfig
from repro.core.vnc import VnCExecutor
from repro.ecp.chip import ECPChip
from repro.mem.request import Request, RequestKind, WriteEntry
from repro.pcm import line as L
from repro.pcm.array import LineAddress, PCMArray
from repro.stats.counters import Counters

ROWS = 24


def build(scheme: SchemeConfig, seed: int, p_bitline: float):
    array = PCMArray(banks=16, rows_per_bank=ROWS, seed=seed)
    ecp = ECPChip(entries_per_line=scheme.ecp_entries)
    executor = VnCExecutor(
        array=array,
        ecp=ecp,
        scheme=scheme,
        timing=TimingConfig(),
        disturbance=DisturbanceConfig(p_bitline=p_bitline),
        counters=Counters(),
        rng=np.random.default_rng(seed),
        flip_fractions=[0.13],
    )
    return executor, array, ecp


def do_write(executor, bank, row, line, cancel_progress=None):
    request = Request(
        RequestKind.WRITE, 0, LineAddress(bank, row, line), 0, nm_tag=(1, 1)
    )
    entry = WriteEntry(request, slots=executor.preread_slots(request))
    op = executor.execute(entry, 0)
    if cancel_progress is not None:
        op.cancel(cancel_progress)
    else:
        op.commit()


def audit(executor, array, ecp) -> None:
    """Every disturbed bit must be covered by ECP unless marked uncovered."""
    for (bank, row), state in array._rows.items():
        for line in range(64):
            disturbed = state.disturbed[line]
            if not L.popcount(disturbed):
                continue
            key = (bank, row, line)
            positions = set(L.bit_positions(disturbed))
            ecp_line = ecp.peek(key)
            covered = (
                {e.position for e in ecp_line.entries} if ecp_line else set()
            )
            pending = executor.uncovered.get(key)
            pending_positions = (
                set(L.bit_positions(pending)) if pending is not None else set()
            )
            assert positions <= covered | pending_positions


writes = st.lists(
    st.tuples(
        st.integers(0, 3),          # bank
        st.integers(1, ROWS - 2),   # row
        st.integers(0, 3),          # line
        st.floats(0.0, 1.0),        # cancel draw
    ),
    min_size=1,
    max_size=25,
)


class TestInvariantUnderRandomSequences:
    @given(writes, st.integers(0, 50))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lazyc_always_covered(self, script, seed):
        executor, array, ecp = build(
            SchemeConfig(lazy_correction=True, ecp_entries=6), seed, 0.115
        )
        for bank, row, line, _ in script:
            do_write(executor, bank, row, line)
        audit(executor, array, ecp)

    @given(writes, st.integers(0, 50))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_baseline_leaves_nothing(self, script, seed):
        executor, array, ecp = build(SchemeConfig(), seed, 0.115)
        for bank, row, line, _ in script:
            do_write(executor, bank, row, line)
        for (bank, row), state in array._rows.items():
            assert int(np.count_nonzero(state.disturbed)) == 0

    @given(writes, st.integers(0, 50))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cancellations_tracked_as_uncovered(self, script, seed):
        """Cancelled partial writes may leave flips, but only ones the
        executor tracks in its uncovered map (retries then resolve them)."""
        executor, array, ecp = build(
            SchemeConfig(lazy_correction=True, ecp_entries=6), seed, 0.115
        )
        for bank, row, line, cancel_draw in script:
            cancel = cancel_draw if cancel_draw < 0.4 else None
            do_write(executor, bank, row, line, cancel_progress=cancel)
        audit(executor, array, ecp)

    @given(writes, st.integers(0, 50))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stored_never_overlaps_disturbed(self, script, seed):
        executor, array, ecp = build(
            SchemeConfig(lazy_correction=True, ecp_entries=2), seed, 0.3
        )
        for bank, row, line, _ in script:
            do_write(executor, bank, row, line)
        for (bank, row), state in array._rows.items():
            assert int(np.count_nonzero(state.stored & state.disturbed)) == 0

    @given(writes, st.integers(0, 30))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_latency_always_bounded(self, script, seed):
        """Composite op latency stays within the analytic worst case."""
        executor, array, ecp = build(SchemeConfig(), seed, 0.115)
        timing = TimingConfig()
        # write (<=4 SET rounds + wl pass) + 2 pre + 2 post reads + cascades.
        upper = 4 * timing.set_cycles + timing.reset_cycles + 4 * timing.read_cycles
        upper += 40 * (timing.read_cycles + 4 * timing.reset_cycles)
        for bank, row, line, _ in script:
            request = Request(
                RequestKind.WRITE, 0, LineAddress(bank, row, line), 0
            )
            entry = WriteEntry(request, slots=executor.preread_slots(request))
            op = executor.execute(entry, 0)
            assert timing.reset_cycles <= op.latency <= upper
            op.commit()
