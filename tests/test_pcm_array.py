"""Tests for the lazily materialised PCM cell array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.pcm import line as L
from repro.pcm.array import LineAddress, PCMArray


@pytest.fixture
def array() -> PCMArray:
    return PCMArray(banks=4, rows_per_bank=16, seed=1)


ADDR = LineAddress(bank=1, row=5, line=3)


class TestMaterialisation:
    def test_lazy(self, array):
        assert array.materialised_rows == 0
        array.stored_line(ADDR)
        assert array.materialised_rows == 1
        assert array.is_materialised(1, 5)
        assert not array.is_materialised(0, 0)

    def test_deterministic_contents(self):
        a = PCMArray(4, 16, seed=9)
        b = PCMArray(4, 16, seed=9)
        assert np.array_equal(a.stored_line(ADDR), b.stored_line(ADDR))

    def test_different_seed_differs(self):
        a = PCMArray(4, 16, seed=9)
        b = PCMArray(4, 16, seed=10)
        assert not np.array_equal(a.stored_line(ADDR), b.stored_line(ADDR))

    def test_out_of_range_rejected(self, array):
        with pytest.raises(DeviceError):
            array.stored_line(LineAddress(4, 0, 0))
        with pytest.raises(DeviceError):
            array.stored_line(LineAddress(0, 16, 0))
        with pytest.raises(DeviceError):
            array.stored_line(LineAddress(0, 0, 64))


class TestDisturbAndCorrect:
    def test_disturb_only_flips_zero_cells(self, array):
        stored = array.stored_line(ADDR)
        mask = L.full_line()
        new = array.disturb(ADDR, mask)
        # Exactly the cells storing 0 were flipped.
        assert new == L.popcount(~stored)
        array.check_invariants(ADDR)
        assert np.array_equal(array.physical_line(ADDR), L.full_line())

    def test_disturb_idempotent(self, array):
        mask = L.mask_from_positions([0, 1, 2, 3])
        first = array.disturb(ADDR, mask)
        second = array.disturb(ADDR, mask)
        assert second == 0
        assert first >= 0

    def test_correct_clears_all(self, array):
        array.disturb(ADDR, L.full_line())
        cleared = array.correct(ADDR)
        assert cleared > 0
        assert L.popcount(array.disturbed_mask(ADDR)) == 0
        assert np.array_equal(array.physical_line(ADDR), array.stored_line(ADDR))

    def test_correct_with_mask(self, array):
        stored = array.stored_line(ADDR).copy()
        zeros = L.bit_positions((~stored).astype(L.WORD_DTYPE))[:4]
        array.disturb(ADDR, L.mask_from_positions(zeros))
        cleared = array.correct(ADDR, L.mask_from_positions(zeros[:2]))
        assert cleared == 2
        assert L.popcount(array.disturbed_mask(ADDR)) == len(zeros) - 2


class TestSetLine:
    def test_set_line_clears_disturbance(self, array):
        array.disturb(ADDR, L.full_line())
        new = L.mask_from_positions([10, 20])
        array.set_line(ADDR, new, flags=0x5)
        assert np.array_equal(array.stored_line(ADDR), new)
        assert L.popcount(array.disturbed_mask(ADDR)) == 0
        assert array.line_flags(ADDR) == 0x5


class TestAdjacency:
    def test_interior_neighbours(self, array):
        nbs = list(array.bitline_neighbours(ADDR))
        assert nbs == [LineAddress(1, 4, 3), LineAddress(1, 6, 3)]

    def test_top_edge(self, array):
        nbs = list(array.bitline_neighbours(LineAddress(0, 0, 0)))
        assert nbs == [LineAddress(0, 1, 0)]

    def test_bottom_edge(self, array):
        nbs = list(array.bitline_neighbours(LineAddress(0, 15, 7)))
        assert nbs == [LineAddress(0, 14, 7)]

    def test_line_address_neighbour_helper(self):
        assert ADDR.neighbour(-1) == LineAddress(1, 4, 3)
        assert LineAddress(0, 0, 0).neighbour(-1) is None
