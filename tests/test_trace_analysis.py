"""Tests: the synthetic generator measurably exhibits Table 3's rates."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.traces.analysis import analyse, check_against_profile
from repro.traces.profiles import WORKLOAD_ORDER, profile
from repro.traces.record import TraceRecord
from repro.traces.synthetic import generate_trace


class TestAnalyse:
    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            analyse([])

    def test_simple_counts(self):
        records = [
            TraceRecord(False, 0, 9),     # 10 instructions
            TraceRecord(True, 64, 9),     # 10 instructions
        ]
        p = analyse(records)
        assert p.references == 2
        assert p.instructions == 20
        assert p.rpki == pytest.approx(50.0)
        assert p.wpki == pytest.approx(50.0)
        assert p.write_fraction == 0.5
        assert p.sequential_fraction == 1.0
        assert p.footprint_lines == 2 and p.footprint_pages == 1

    def test_reuse_fraction(self):
        records = [TraceRecord(False, 0, 0)] * 4
        assert analyse(records).line_reuse_fraction == 0.75

    def test_bank_balance_extremes(self):
        # All in one bank (page 0 repeatedly).
        one_bank = [TraceRecord(False, 0, 0)] * 16
        assert analyse(one_bank).bank_balance == 0.0
        # Spread over all 16 banks (pages 0..15).
        spread = [TraceRecord(False, p * 4096, 0) for p in range(16)]
        assert analyse(spread).bank_balance == pytest.approx(1.0)

    def test_summary_rows_render(self):
        rows = analyse([TraceRecord(False, 0, 0)]).summary_rows()
        assert any(r[0] == "RPKI" for r in rows)


class TestGeneratorFidelity:
    """Every Table 3 workload's generated trace must measure back to its
    published RPKI/WPKI within tolerance — the substitution's core claim."""

    @pytest.mark.parametrize("bench", WORKLOAD_ORDER)
    def test_rates_match_table3(self, bench):
        records = generate_trace(bench, 6000, seed=3)
        spec = profile(bench)
        assert check_against_profile(records, spec.rpki, spec.wpki)

    def test_streaming_benchmark_measures_sequential(self):
        records = generate_trace("stream", 3000, seed=1)
        assert analyse(records).sequential_fraction > 0.8

    def test_pointer_benchmark_measures_irregular(self):
        records = generate_trace("mcf", 3000, seed=1)
        p = analyse(records)
        assert p.sequential_fraction < 0.35
        assert p.bank_balance > 0.9  # interleaving spreads banks

    def test_footprint_bounded_by_working_set(self):
        records = generate_trace("xalan", 3000, seed=1, base_page=0)
        assert analyse(records).footprint_pages <= profile("xalan").working_set_pages
