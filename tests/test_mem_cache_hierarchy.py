"""Tests for the set-associative cache and the Table 2 hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.mem.cache import Cache
from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig
from repro.traces.capture import RawAccess, capture, measured_rpki_wpki


class TestCache:
    def make(self, size=1024, ways=2):
        return Cache("t", size_bytes=size, ways=ways)

    def test_miss_then_hit(self):
        c = self.make()
        hit, _ = c.access(0x1000, False)
        assert not hit
        hit, _ = c.access(0x1000, False)
        assert hit
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_same_line_different_bytes_hit(self):
        c = self.make()
        c.access(0x1000, False)
        hit, _ = c.access(0x103F, False)
        assert hit

    def test_lru_eviction(self):
        c = self.make(size=128, ways=1)  # 2 sets, direct mapped
        c.access(0, False)
        c.access(128, False)   # same set (line 2, set 0), evicts line 0
        hit, _ = c.access(0, False)
        assert not hit

    def test_dirty_writeback(self):
        c = self.make(size=128, ways=1)
        c.access(0, True)               # dirty
        hit, wb = c.access(128, False)  # evicts dirty line 0
        assert not hit
        assert wb == 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = self.make(size=128, ways=1)
        c.access(0, False)
        _, wb = c.access(128, False)
        assert wb is None

    def test_flush_dirty(self):
        c = self.make()
        c.access(0, True)
        c.access(64, False)
        dirty = c.flush_dirty()
        assert dirty == [0]
        assert not c.contains(0)

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            Cache("bad", size_bytes=1000, ways=3)


class TestHierarchy:
    def test_first_access_reaches_memory(self):
        h = CacheHierarchy()
        cycles, refs = h.access(0x4000, False)
        assert len(refs) == 1 and not refs[0].is_write

    def test_second_access_hits_l1(self):
        h = CacheHierarchy()
        h.access(0x4000, False)
        cycles, refs = h.access(0x4000, False)
        assert cycles == h.config.l1_hit_cycles
        assert refs == []

    def test_dirty_eviction_chain_reaches_memory(self):
        """Writing a long stream must eventually push write-backs to memory."""
        small = HierarchyConfig(
            l1_bytes=1 << 10, l2_bytes=2 << 10, l3_bytes=4 << 10
        )
        h = CacheHierarchy(small)
        refs = []
        for i in range(1000):
            _, r = h.access(i * 64, True)
            refs.extend(r)
        assert any(r.is_write for r in refs)

    def test_drain_emits_dirty_lines(self):
        h = CacheHierarchy(HierarchyConfig(l1_bytes=1 << 10, l2_bytes=2 << 10,
                                           l3_bytes=4 << 10))
        h.access(0, True)
        refs = h.drain()
        assert any(r.is_write and r.address == 0 for r in refs)


class TestCapture:
    def test_capture_filters_hits(self):
        stream = [RawAccess(0x1000, False, gap=3)] * 10
        records = capture(stream)
        # Only the first access misses all the way to memory.
        assert len(records) == 1
        assert not records[0].is_write

    def test_warmup_suppresses_records(self):
        stream = [RawAccess(i * 64, False) for i in range(10)]
        records = capture(stream, warmup=10)
        assert records == []

    def test_gap_accumulation(self):
        stream = [
            RawAccess(0x1000, False, gap=5),
            RawAccess(0x1000, False, gap=7),   # L1 hit
            RawAccess(0x9000, False, gap=2),   # miss
        ]
        records = capture(stream)
        assert records[0].gap == 5
        # 1 (first access instr) + 7 + 1 (hit instr) + 2
        assert records[1].gap == 11

    def test_rpki_wpki(self):
        from repro.traces.record import TraceRecord

        records = [
            TraceRecord(False, 0, 0),
            TraceRecord(False, 64, 0),
            TraceRecord(True, 128, 0),
        ]
        rpki, wpki = measured_rpki_wpki(records, instructions=1000)
        assert rpki == 2.0 and wpki == 1.0
