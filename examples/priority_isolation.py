#!/usr/bin/env python3
"""Per-application (n:m) allocation: isolating a high-priority workload.

Section 4.4's motivating scenario: (n:m)-Alloc exists so the OS can "match
the VnC overhead to the performance demand of high priority applications".
Here core 0 runs a latency-critical copy of the workload; the other cores
run background copies.  We give *only* core 0 a (1:2) allocation (its pages
get private thermal-band strips, so its writes never need VnC) while the
background cores stay on dense (1:1) pages — total capacity cost is just
core 0's footprint, not the whole DIMM.

Run:  python examples/priority_isolation.py [workload] [trace-length]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, homogeneous_workload
from repro.core import schemes
from repro.core.system import SDPCMSystem
from repro.stats.report import format_table


def run(nm_tags, workload, label):
    config = SystemConfig(cores=workload.cores, seed=1).with_scheme(
        schemes.lazyc()
    )
    system = SDPCMSystem(config, nm_tags=nm_tags)
    result = system.run(workload)
    return label, result


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "zeusmp"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 800
    cores = 8
    workload = homogeneous_workload(bench, cores=cores, length=length, seed=1)

    runs = [
        run([(1, 1)] * cores, workload, "all dense (1:1)"),
        run([(1, 2)] + [(1, 1)] * (cores - 1), workload, "core 0 isolated (1:2)"),
        run([(1, 2)] * cores, workload, "all isolated (1:2)"),
    ]

    rows = []
    for label, result in runs:
        rows.append(
            [
                label,
                result.per_core_cpi[0],
                sum(result.per_core_cpi[1:]) / (cores - 1),
                result.counters.verifications / max(1, result.counters.demand_writes),
            ]
        )
    print(
        format_table(
            f"{bench}: per-application (n:m) isolation (LazyC base, 8 cores)",
            ["configuration", "core-0 CPI", "others mean CPI", "verifies/write"],
            rows,
        )
    )
    dense = runs[0][1].per_core_cpi[0]
    isolated = runs[1][1].per_core_cpi[0]
    print(
        f"\nCore 0 CPI: {dense:.2f} (dense) -> {isolated:.2f} (isolated), "
        f"{(1 - isolated / dense):+.1%} at a capacity cost limited to core 0's "
        "footprint."
    )


if __name__ == "__main__":
    main()
