#!/usr/bin/env python3
"""Pick an (n:m) allocator under a performance-loss budget.

The paper's conclusion sketches exactly this workflow: "given a 5%
performance degradation constraint, we may meet it by either adopting the
first two schemes or adopting (n:m)-Alloc with proper n and m."  This
example sweeps the allocators for a high-priority workload and reports,
per ratio, the speedup and the capacity sacrificed — then picks the
densest allocator that meets the budget.

Run:  python examples/allocator_tradeoff.py [workload] [budget-%]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, homogeneous_workload, simulate
from repro.alloc.strips import usable_fraction
from repro.core import schemes
from repro.stats.report import format_table


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "zeusmp"
    budget = float(sys.argv[2]) / 100.0 if len(sys.argv) > 2 else 0.05
    length = 800

    workload = homogeneous_workload(bench, cores=8, length=length, seed=1)
    din = simulate(SystemConfig(seed=1).with_scheme(schemes.din()), workload)

    candidates = {
        (1, 1): schemes.lazyc_preread(),          # keep all capacity
        (7, 8): schemes.nm_alloc(7, 8, with_lazyc=True, with_preread=True),
        (3, 4): schemes.nm_alloc(3, 4, with_lazyc=True, with_preread=True),
        (2, 3): schemes.nm_alloc(2, 3, with_lazyc=True, with_preread=True),
        (1, 2): schemes.nm_alloc(1, 2),
    }

    rows = []
    meeting = []
    for (n, m), scheme in candidates.items():
        res = simulate(SystemConfig(seed=1).with_scheme(scheme), workload)
        degradation = res.cpi / din.cpi - 1.0
        capacity = usable_fraction(n, m) if n != m else 1.0
        rows.append([f"({n}:{m})", capacity, degradation * 100.0])
        if degradation <= budget:
            meeting.append(((n, m), capacity))

    print(
        format_table(
            f"{bench}: capacity vs degradation-from-DIN per allocator "
            f"(budget {budget:.0%})",
            ["allocator (+LazyC+PreRead)", "usable capacity", "degradation %"],
            rows,
        )
    )
    if meeting:
        best = max(meeting, key=lambda x: x[1])
        (n, m), capacity = best
        print(
            f"\nDensest allocator within the {budget:.0%} budget: "
            f"({n}:{m}) at {capacity:.0%} usable capacity."
        )
    else:
        print(f"\nNo allocator meets the {budget:.0%} budget for {bench}.")


if __name__ == "__main__":
    main()
