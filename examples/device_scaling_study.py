#!/usr/bin/env python3
"""Device study: write disturbance across technology nodes and layouts.

Uses the calibrated thermal + Arrhenius models (no timing simulation, runs
instantly) to answer the questions Section 2/3 of the paper motivates:

* when did WD appear, and how bad is it at 20 nm? (Table 1)
* what inter-cell spacing would make a node WD-free, and what does that
  spacing cost in cell area? (Figure 1)
* what do the three layouts deliver in capacity for equal silicon? (§6.1)

Run:  python examples/device_scaling_study.py
"""

from __future__ import annotations

from repro.pcm.geometry import (
    DIN_ENHANCED,
    PROTOTYPE,
    SUPER_DENSE,
    capacity_for_equal_array_area,
)
from repro.pcm.scaling import ScalingModel, minimum_safe_pitch
from repro.pcm.thermal import Medium
from repro.stats.report import format_table


def main() -> None:
    model = ScalingModel()

    rows = []
    for node in (90, 72, 54, 40, 30, 20, 16):
        p = model.profile(float(node))
        rows.append(
            [
                f"{node} nm",
                p.wordline_temp_c,
                p.bitline_temp_c,
                p.wordline_error_rate,
                p.bitline_error_rate,
                "yes" if p.wd_prone else "no",
            ]
        )
    print(
        format_table(
            "Minimal-pitch (2F) disturbance across nodes",
            ["node", "WL temp C", "BL temp C", "WL rate", "BL rate", "WD?"],
            rows,
        )
    )
    print(f"\nWD onset node (model): {model.wd_onset_node():.1f} nm "
          "(paper: first reported at 54 nm [15])")

    safe_gst = minimum_safe_pitch(Medium.GST)
    safe_oxide = minimum_safe_pitch(Medium.OXIDE)
    print(
        f"WD-free pitch at 20 nm: {safe_gst:.1f}F along bit-lines, "
        f"{safe_oxide:.1f}F along word-lines"
        f" (prototype chip conservatively uses 4F / 3F)"
    )

    rows = []
    for geom in (SUPER_DENSE, DIN_ENHANCED, PROTOTYPE):
        rows.append(
            [
                geom.name,
                geom.cell_area_f2,
                f"{SUPER_DENSE.density_vs(geom):.2f}x denser than this",
            ]
        )
    print()
    print(format_table("Figure 1 layouts", ["layout", "F^2/cell", "vs super dense"], rows))

    cap = capacity_for_equal_array_area()
    print(
        f"\nEqual cell-array silicon: SD-PCM {cap['sd_pcm_gb']:.2f} GB vs "
        f"DIN {cap['din_gb']:.2f} GB -> {cap['capacity_gain']:.0%} capacity gain"
    )


if __name__ == "__main__":
    main()
