#!/usr/bin/env python3
"""Quickstart: simulate SD-PCM schemes on one workload.

Builds an 8-core system with PCM main memory (Table 2 configuration),
replays the ``lbm`` workload under the DIN comparison point, basic VnC,
and the full SD-PCM stack, and prints the headline numbers the paper's
evaluation revolves around.

Run:  python examples/quickstart.py  [workload] [trace-length]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, homogeneous_workload, simulate
from repro.core import schemes
from repro.stats.report import format_table


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "lbm"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 1000

    print(f"Simulating 8 cores x {length} references of {bench!r}...\n")
    workload = homogeneous_workload(bench, cores=8, length=length, seed=1)

    lineup = {
        "DIN (8F^2, WD-free bit-lines)": schemes.din(),
        "baseline VnC (4F^2)": schemes.baseline(),
        "LazyC (ECP-6)": schemes.lazyc(),
        "LazyC+PreRead": schemes.lazyc_preread(),
        "LazyC+PreRead+(2:3)": schemes.all_combined(),
        "(1:2)-Alloc": schemes.nm_alloc(1, 2),
    }

    results = {}
    for name, scheme in lineup.items():
        config = SystemConfig(seed=1).with_scheme(scheme)
        results[name] = simulate(config, workload)

    base = results["baseline VnC (4F^2)"]
    rows = []
    for name, res in results.items():
        c = res.counters
        rows.append(
            [
                name,
                res.cpi,
                res.speedup_over(base),
                c.corrections_per_write,
                c.avg_errors_per_adjacent_line,
            ]
        )
    print(
        format_table(
            f"{bench}: scheme comparison (speedups normalised to baseline VnC)",
            ["scheme", "CPI", "speedup", "corr/write", "WD err/adj line"],
            rows,
        )
    )
    print(
        "\nThe super dense 4F^2 array doubles cell density over DIN's 8F^2;"
        "\nLazyC+PreRead+(2:3) recovers most of the VnC slowdown, and"
        "\n(1:2)-Alloc eliminates it at half capacity."
    )


if __name__ == "__main__":
    main()
