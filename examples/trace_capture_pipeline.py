#!/usr/bin/env python3
"""Full pipeline: raw CPU accesses -> cache filtering -> PCM simulation.

Mirrors the paper's methodology end to end (Section 5.2): a raw access
stream (here: a synthetic streaming kernel with a hot working set) is
filtered through the Table 2 cache hierarchy the way the PIN tool captures
"references to main memory", the surviving trace is characterised
(RPKI/WPKI, like Table 3), and then replayed against the SD-PCM timing
model.

Run:  python examples/trace_capture_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import SchemeConfig, SystemConfig
from repro.core import schemes
from repro.core.system import SDPCMSystem
from repro.mem.hierarchy import CacheHierarchy, HierarchyConfig
from repro.stats.report import format_table
from repro.traces.capture import RawAccess, capture, measured_rpki_wpki
from repro.traces.profiles import BenchmarkProfile
from repro.traces.workload import Workload


def synthesize_raw_stream(n: int, seed: int) -> list[RawAccess]:
    """A streaming kernel (array sweep) mixed with hot-set pointer chasing."""
    rng = np.random.default_rng(seed)
    accesses = []
    stream_addr = 0x10_0000
    hot_pages = rng.integers(0, 64, size=n)
    for i in range(n):
        if i % 4 != 0:
            stream_addr += 8  # word-granular sweep: 8 accesses per line
            accesses.append(RawAccess(stream_addr, is_write=(i % 8 == 1), gap=2))
        else:
            addr = 0x80_0000 + int(hot_pages[i]) * 4096 + int(rng.integers(64)) * 64
            accesses.append(RawAccess(addr, is_write=bool(rng.random() < 0.3), gap=5))
    return accesses


def main() -> None:
    raw = synthesize_raw_stream(60_000, seed=3)
    # Small caches so the demo shows misses without needing 10M accesses.
    hierarchy = CacheHierarchy(
        HierarchyConfig(l1_bytes=8 << 10, l2_bytes=64 << 10, l3_bytes=512 << 10)
    )
    records = capture(raw, hierarchy, warmup=10_000)
    instructions = sum(a.gap + 1 for a in raw[10_000:])
    rpki, wpki = measured_rpki_wpki(records, instructions)

    print(
        format_table(
            "Capture (PIN-style filtering through L1/L2/L3)",
            ["stage", "value"],
            [
                ["raw accesses", len(raw)],
                ["post-cache references", len(records)],
                ["L1 miss rate", hierarchy.l1.stats.miss_rate],
                ["L2 miss rate", hierarchy.l2.stats.miss_rate],
                ["L3 miss rate", hierarchy.l3.stats.miss_rate],
                ["RPKI", rpki],
                ["WPKI", wpki],
            ],
        )
    )

    profile = BenchmarkProfile(
        name="captured",
        suite="example",
        rpki=max(rpki, 0.01),
        wpki=max(wpki, 0.01),
        working_set_pages=1024,
        seq_fraction=0.5,
        zipf_s=0.8,
        flip_fraction=0.12,
    )
    workload = Workload("captured", [records], [profile])

    rows = []
    for name in ("DIN", "baseline", "LazyC+PreRead"):
        config = SystemConfig(cores=1, seed=1).with_scheme(schemes.by_name(name))
        result = SDPCMSystem(config).run(workload)
        rows.append([name, result.cpi, result.counters.corrections_per_write])
    print()
    print(
        format_table(
            "Replay of the captured trace",
            ["scheme", "CPI", "corrections/write"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
