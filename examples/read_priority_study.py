#!/usr/bin/env python3
"""Read-priority policies under VnC-lengthened writes (Section 6.8 + extension).

VnC makes writes long (pre-reads + write + verification + corrections), so
how the controller lets demand reads through matters:

* **bursty drains** (the paper's default): reads wait for queue flushes,
* **write cancellation** [22]: reads kill in-flight writes; the already
  pulsed cells keep their disturbance and the retry re-disturbs — the
  paper notes this is why cancellation helps less under WD,
* **write pausing** (our extension, also from [22]): reads pre-empt at a
  round boundary with no lost work and no extra disturbance.

Run:  python examples/read_priority_study.py [workload] [trace-length]
"""

from __future__ import annotations

import sys

from repro import SystemConfig, homogeneous_workload, simulate
from repro.core import schemes
from repro.stats.report import format_table


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 800
    workload = homogeneous_workload(bench, cores=8, length=length, seed=1)

    lineup = ["VnC", "WC", "WP", "LazyC", "WC+LazyC", "WP+LazyC"]
    results = {
        name: simulate(
            SystemConfig(seed=1).with_scheme(schemes.by_name(name)), workload
        )
        for name in lineup
    }
    base = results["VnC"]
    rows = []
    for name in lineup:
        res = results[name]
        c = res.counters
        rows.append(
            [
                name,
                res.speedup_over(base),
                c.writes_cancelled,
                c.writes_paused,
                c.partial_write_errors,
            ]
        )
    print(
        format_table(
            f"{bench}: read-priority policy study (speedup vs basic VnC)",
            ["scheme", "speedup", "cancelled", "paused", "partial WD errors"],
            rows,
        )
    )
    print(
        "\nCancellation wastes pulsed work and re-disturbs on retry"
        " (partial WD errors > 0); pausing keeps the read benefit without"
        " either cost, and both compose with LazyCorrection."
    )


if __name__ == "__main__":
    main()
