"""CI smoke benchmark for the perf engine's result cache.

Runs one simulation cell cold, then again against the warm cache, and
asserts the hit path is at least 5x faster (in practice it is orders of
magnitude).  Uses a private temporary cache directory so it neither reads
from nor pollutes the user's ~/.cache/repro.
"""

from __future__ import annotations

import time

from repro.core import schemes
from repro.experiments import common
from repro.perf.cache import ResultCache
from repro.perf.engine import CellRunner

MIN_SPEEDUP = 5.0


def test_bench_engine_cache_speedup(tmp_path):
    runner = CellRunner(jobs=1, cache=ResultCache(tmp_path, enabled=True))
    spec = common.cell("mcf", schemes.baseline(), length=400, cores=4)

    start = time.perf_counter()
    cold = runner.run_cells([spec])[0]
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = runner.run_cells([spec])[0]
    warm_s = time.perf_counter() - start

    assert warm.cycles == cold.cycles
    assert warm.per_core_cpi == cold.per_core_cpi
    speedup = cold_s / max(warm_s, 1e-9)
    print(f"\ncold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.1f} ms, "
          f"{speedup:.0f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"cache hit only {speedup:.1f}x faster than simulation "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )
