"""Regenerates Table 1 (disturbance temperatures and error rates)."""

from repro.experiments import table1


def test_bench_table1(benchmark, record_result):
    result = benchmark.pedantic(table1.run_experiment, rounds=1, iterations=1)
    record_result("table1", result)
    assert abs(result.metrics["word-line_rate"] - 0.099) < 1e-6
    assert abs(result.metrics["bit-line_rate"] - 0.115) < 1e-6
