"""Regenerates the DESIGN.md ablation studies (beyond the paper's figures)."""

from repro.experiments import ablation


def test_bench_ablation_ecp_density(benchmark, record_result):
    result = benchmark.pedantic(
        ablation.run_ecp_density_ablation, rounds=1, iterations=1
    )
    record_result("ablation_ecp_density", result)
    # The low-density ECP chip is the point of Section 4.2: the naive super
    # dense ECP chip must give back a chunk of LazyC's win.
    assert result.metrics["low_density"] > result.metrics["dense"]


def test_bench_ablation_read_priority(benchmark, record_result):
    result = benchmark.pedantic(
        ablation.run_read_priority_ablation, rounds=1, iterations=1
    )
    record_result("ablation_read_priority", result)
    assert result.metrics["WP+LazyC"] >= result.metrics["LazyC"] * 0.95
    assert result.metrics["WC+LazyC"] >= result.metrics["LazyC"] * 0.95


def test_bench_ablation_din(benchmark, record_result):
    result = benchmark.pedantic(ablation.run_din_ablation, rounds=1, iterations=1)
    record_result("ablation_din", result)
    assert result.metrics["without_din"] > 2 * result.metrics["with_din"]
