"""Regenerates the Section 6.2 hardware-overhead analysis."""

from repro.experiments import overhead


def test_bench_overhead(benchmark, record_result):
    result = benchmark.pedantic(overhead.run_experiment, rounds=1, iterations=1)
    record_result("overhead", result)
    assert abs(result.metrics["preread_bytes"] - 4096) <= 16
