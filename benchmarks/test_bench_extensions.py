"""Regenerates the encoder trade-off and energy extension studies."""

from repro.experiments import encoders, energy


def test_bench_encoders(benchmark, record_result):
    result = benchmark.pedantic(
        encoders.run_experiment, kwargs={"length": 400}, rounds=1, iterations=1
    )
    record_result("encoders", result)
    m = result.metrics
    assert m["fnw_cells"] <= m["raw_cells"]          # FNW never writes more
    assert m["din_vulnerable"] < m["raw_vulnerable"]  # DIN cuts vulnerability
    assert m["din_vulnerable"] < m["fnw_vulnerable"]


def test_bench_energy(benchmark, record_result):
    result = benchmark.pedantic(energy.run_experiment, rounds=1, iterations=1)
    record_result("energy", result)
    m = result.metrics
    assert m["DIN"] == 0.0 and m["(1:2)"] < 0.02
    assert m["baseline"] > m["LazyC"] > 0.0
