"""Kernel-layer benchmark: fast bit kernels, batched trace synthesis, cold cell.

Three measurements, written machine-readably to ``BENCH_kernels.json``:

* **Kernel microbenchmarks** — the int-domain/batched kernels against the
  retained ``_scalar_*`` references, same machine, same run, so the
  asserted ratios are machine-independent.
* **Trace synthesis** — the vectorized generator against an inline replica
  of the original per-record Python loop (also an equivalence check).
* **Cold cell** — one cold-cache simulation cell, compared to the pre-PR
  wall time recorded when this optimisation landed; the headline ≥3x
  acceptance number.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.config import LINES_PER_PAGE, LINE_BYTES, LINE_WORDS, PAGE_BYTES
from repro.core import schemes
from repro.experiments import common
from repro.pcm import line as L
from repro.perf.cache import ResultCache
from repro.perf.engine import CellRunner
from repro.traces.profiles import profile
from repro.traces.synthetic import SyntheticTraceGenerator, _zipf_page_sampler

from conftest import OUT_DIR

#: Cold wall time of the reference cell (mcf, LazyC+PreRead, length=1200,
#: cores=4) measured on the dev machine immediately before this PR's
#: kernel work.  The acceptance criterion is >= MIN_CELL_SPEEDUP against it.
PRE_PR_COLD_CELL_S = 2.209
MIN_CELL_SPEEDUP = 3.0
MIN_POPCOUNT_SPEEDUP = 2.0
MIN_SAMPLE_SPEEDUP = 1.2
MIN_TRACE_SPEEDUP = 3.0


def _best_of(n, fn):
    """Min-of-n wall time with GC parked — microbenchmark noise floor."""
    import gc

    was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        if was_enabled:
            gc.enable()


def _bench_kernels() -> dict:
    rng = np.random.default_rng(42)
    masks = [L.random_line(rng) & L.random_line(rng) for _ in range(200)]
    ints = [L.to_int(m) for m in masks]
    # Sampling operates on vulnerability masks, which are sparse (a write
    # flips a handful of a neighbour's cells); benchmark that shape.
    sparse = [
        L.mask_from_positions(rng.choice(512, size=12, replace=False))
        for _ in range(200)
    ]
    sparse_ints = [L.to_int(m) for m in sparse]

    scalar_pop = _best_of(5, lambda: [L._scalar_popcount(m) for m in masks])
    fast_pop = _best_of(5, lambda: [L.popcount(v) for v in ints])

    def scalar_sample():
        r = np.random.default_rng(7)
        for m in sparse:
            L._scalar_sample_mask(m, 0.1, r)

    def batched_sample():
        r = np.random.default_rng(7)
        L.sample_masks_int(sparse_ints, 0.1, r)

    scalar_s = _best_of(15, scalar_sample)
    batched_s = _best_of(15, batched_sample)
    return {
        "popcount_scalar_s": scalar_pop,
        "popcount_int_s": fast_pop,
        "popcount_speedup": scalar_pop / max(fast_pop, 1e-12),
        "sample_scalar_s": scalar_s,
        "sample_batched_int_s": batched_s,
        "sample_speedup": scalar_s / max(batched_s, 1e-12),
    }


def _scalar_trace_loop(gen: SyntheticTraceGenerator, length: int) -> list:
    """Replica of the pre-PR per-record generation loop (reference)."""
    import zlib

    bench = gen.profile
    name_tag = zlib.crc32(bench.name.encode()) & 0xFFFF
    rng = np.random.default_rng((gen.seed, gen.core, name_tag))
    cdf, perm = _zipf_page_sampler(bench.working_set_pages, bench.zipf_s, rng)
    is_write = rng.random(length) < bench.write_fraction
    p = min(1.0, 1.0 / max(bench.mean_gap, 1.0))
    gaps = rng.geometric(p, size=length) - 1
    streaming = rng.random(length) < bench.seq_fraction
    fresh_draws = rng.random(length)
    line_cdf, line_perm = _zipf_page_sampler(LINES_PER_PAGE, 0.9, rng)
    line_draws = rng.random(length)

    out = []
    page = int(perm[np.searchsorted(cdf, fresh_draws[0])])
    line = int(line_perm[np.searchsorted(line_cdf, line_draws[0])])
    for i in range(length):
        if i and streaming[i]:
            line += 1
            if line >= LINES_PER_PAGE:
                line = 0
                page = (page + 1) % bench.working_set_pages
        elif i:
            page = int(perm[np.searchsorted(cdf, fresh_draws[i])])
            rank = int(line_perm[np.searchsorted(line_cdf, line_draws[i])])
            line = (rank + page * 7) % LINES_PER_PAGE
        address = (gen.base_page + page) * PAGE_BYTES + line * LINE_BYTES
        out.append((bool(is_write[i]), address, int(gaps[i])))
    return out


def _bench_traces() -> dict:
    gen = SyntheticTraceGenerator(profile("mcf"), seed=1, core=0)
    length = 20_000

    # Equivalence first: the vectorized columns must reproduce the loop.
    trace = gen.generate(length)
    reference = _scalar_trace_loop(gen, length)
    assert trace.is_write.tolist() == [r[0] for r in reference]
    assert trace.address.tolist() == [r[1] for r in reference]
    assert trace.gap.tolist() == [r[2] for r in reference]

    scalar_s = _best_of(3, lambda: _scalar_trace_loop(gen, length))
    vector_s = _best_of(3, lambda: gen.generate(length))
    return {
        "trace_length": length,
        "trace_scalar_s": scalar_s,
        "trace_vectorized_s": vector_s,
        "trace_speedup": scalar_s / max(vector_s, 1e-12),
    }


def _bench_cold_cell(tmp_path) -> dict:
    spec = common.cell(
        "mcf", schemes.by_name("LazyC+PreRead"), length=1200, cores=4
    )
    best = float("inf")
    for attempt in range(3):
        runner = CellRunner(
            jobs=1, cache=ResultCache(tmp_path / f"c{attempt}", enabled=True)
        )
        t0 = time.perf_counter()
        runner.run_cells([spec])
        best = min(best, time.perf_counter() - t0)
    return {
        "cold_cell_s": best,
        "pre_pr_cold_cell_s": PRE_PR_COLD_CELL_S,
        "cold_cell_speedup": PRE_PR_COLD_CELL_S / max(best, 1e-12),
    }


def test_bench_kernels(tmp_path):
    results = {"line_words": LINE_WORDS}
    results.update(_bench_kernels())
    results.update(_bench_traces())
    results.update(_bench_cold_cell(tmp_path))

    OUT_DIR.mkdir(parents=True, exist_ok=True)
    out_path = OUT_DIR / "BENCH_kernels.json"
    out_path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(
        f"\npopcount {results['popcount_speedup']:.1f}x, "
        f"sampling {results['sample_speedup']:.1f}x, "
        f"trace gen {results['trace_speedup']:.1f}x, "
        f"cold cell {results['cold_cell_s']:.3f}s "
        f"({results['cold_cell_speedup']:.2f}x vs pre-PR) -> {out_path}"
    )

    assert results["popcount_speedup"] >= MIN_POPCOUNT_SPEEDUP
    assert results["sample_speedup"] >= MIN_SAMPLE_SPEEDUP
    assert results["trace_speedup"] >= MIN_TRACE_SPEEDUP
    assert results["cold_cell_speedup"] >= MIN_CELL_SPEEDUP, (
        f"cold cell {results['cold_cell_s']:.3f}s is only "
        f"{results['cold_cell_speedup']:.2f}x faster than the pre-PR "
        f"{PRE_PR_COLD_CELL_S}s baseline (need {MIN_CELL_SPEEDUP}x)"
    )
