"""Kernel-layer benchmark: fast bit kernels, batched trace synthesis, cold cell.

Measurements, written machine-readably to ``BENCH_kernels.json``:

* **Kernel microbenchmarks** — the int-domain/batched kernels (including
  the row-batched mask sampling and DIN row coders) against the retained
  ``_scalar_*`` / per-line references, same machine, same run, so the
  asserted ratios are machine-independent.
* **Trace synthesis** — the vectorized generator against an inline replica
  of the original per-record Python loop (also an equivalence check).
* **Cold cell** — one cold-cache simulation cell under *every* kernel
  backend available on this host (``python``/``numpy``/``compiled``),
  each timed twice: with the leaf write-phase samplers and with the
  fused write-phase kernel forced on (``REPRO_KERNEL_FUSED=1``), with a
  hard byte-identity gate across every backend × mode combination.  The
  best leaf time is the headline ``cold_cell_s`` (compared to the pre-PR
  wall time for the ≥3x acceptance number; ``pr4_cold_cell_s`` keeps the
  warm-pool PR's reference so the trend stays visible), and the
  per-backend table — including the ``cold_cell_fused_s`` rows — is the
  calibration the adaptive planner seeds its kernel-backend and
  fused-vs-leaf picks from, guarded by the measuring host's
  fingerprint, so calibration never transfers across machines.  Each
  backend's same-run ``fused_speedup`` (leaf/fused) is asserted loudly
  against MIN_FUSED_SPEEDUP so a fused-path regression >20% fails CI
  instead of just flipping a recorded flag.
* **Batched cells** — a four-cell batch through the cross-cell batch
  layer versus the same cells per-cell, with a hard byte-identity check
  (the CI divergence gate) and the amortized per-cell time.

Set ``REPRO_BENCH_BASELINE=/path/to/BENCH_kernels.json`` to additionally
fail on a >20% regression of any speedup ratio against that committed
baseline; set ``REPRO_BENCH_WRITE_ROOT=1`` to refresh the repo-root
baseline files in place.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
from pathlib import Path

import numpy as np

from repro.config import LINES_PER_PAGE, LINE_BYTES, LINE_WORDS, PAGE_BYTES
from repro.core import schemes
from repro.experiments import common
from repro.pcm import din as D
from repro.pcm import line as L
from repro.perf import batch as batchexec
from repro.perf import engine
from repro.perf.cache import ResultCache
from repro.perf.cellspec import simulate_cell
from repro.perf.engine import CellRunner

from repro.traces.profiles import profile
from repro.traces.synthetic import SyntheticTraceGenerator, _zipf_page_sampler

from conftest import OUT_DIR

#: Bump when a field is renamed or its meaning changes; additions are free.
#: v2: per-backend ``backends`` cold-cell table + measuring ``host``
#: fingerprint (the planner's kernel calibration source).
#: v3: per-backend ``cold_cell_fused_s`` / ``fused_speedup`` rows (the
#: fused write-phase calibration ``decide_fused`` seeds from) plus
#: top-level ``fused_<backend>_speedup`` ratio gates.
SCHEMA_VERSION = 3

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Cold wall time of the reference cell (mcf, LazyC+PreRead, length=1200,
#: cores=4) measured on the dev machine immediately before this PR's
#: kernel work.  The acceptance criterion is >= MIN_CELL_SPEEDUP against it.
PRE_PR_COLD_CELL_S = 2.209
#: The same cell after the warm-pool PR (PR 4) landed — the previous
#: baseline, recorded so the per-PR trend stays visible in the JSON.
PR4_COLD_CELL_S = 0.65
MIN_CELL_SPEEDUP = 3.0
#: The aspirational cold-cell wall time for the reference cell, set to
#: the fused-kernel PR's 0.20s goal for the 1-CPU bench host.  A
#: multi-core dev box with the compiled backend gets there; the 1-CPU CI
#: runner honestly does not (ctypes per-call overhead is the floor), so
#: the target is *recorded* (with a ``cold_cell_target_met`` flag)
#: rather than asserted — the enforced gates are the same-run speedup
#: ratios, which transfer across hosts.
COLD_CELL_TARGET_S = 0.20
#: Loud same-run gate for the fused write phase: each backend's
#: leaf/fused ratio may not drop below 0.8 — i.e. forcing the fused
#: kernel may cost at most 20% over the leaf path it replaces.  On the
#: 1-CPU bench host fused roughly breaks even (per-call ctypes argument
#: marshalling is the floor), so this catches a real fused-path
#: regression without asserting a win it does not have on every host;
#: where fused measures faster, the planner's ``auto`` mode picks it up
#: from the ``cold_cell_fused_s`` calibration rows.
MIN_FUSED_SPEEDUP = 0.8
MIN_POPCOUNT_SPEEDUP = 2.0
MIN_SAMPLE_SPEEDUP = 1.2
MIN_TRACE_SPEEDUP = 3.0

#: Speedup-ratio fields compared against a committed baseline when
#: REPRO_BENCH_BASELINE is set; each may regress at most 20%.  Only
#: same-run scalar-vs-vectorized ratios qualify — they divide two
#: measurements from the same machine and run, so they transfer across
#: hosts.  Absolute wall clocks (and ratios against recorded dev-machine
#: constants, like ``cold_cell_speedup``) do not; the cold cell keeps
#: its own hard MIN_CELL_SPEEDUP assertion instead.
BASELINE_RATIO_FIELDS = (
    "popcount_speedup", "sample_speedup", "trace_speedup",
    "rows_sample_speedup", "din_rows_speedup",
    "kernel_numpy_speedup", "kernel_compiled_speedup",
    "fused_python_speedup", "fused_numpy_speedup",
    "fused_compiled_speedup",
)
BASELINE_TOLERANCE = 0.8


def _best_of(n, fn):
    """Min-of-n wall time with GC parked — microbenchmark noise floor."""
    import gc

    was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        if was_enabled:
            gc.enable()


def _bench_kernels() -> dict:
    rng = np.random.default_rng(42)
    masks = [L.random_line(rng) & L.random_line(rng) for _ in range(200)]
    ints = [L.to_int(m) for m in masks]
    # Sampling operates on vulnerability masks, which are sparse (a write
    # flips a handful of a neighbour's cells); benchmark that shape.
    sparse = [
        L.mask_from_positions(rng.choice(512, size=12, replace=False))
        for _ in range(200)
    ]
    sparse_ints = [L.to_int(m) for m in sparse]

    scalar_pop = _best_of(5, lambda: [L._scalar_popcount(m) for m in masks])
    fast_pop = _best_of(5, lambda: [L.popcount(v) for v in ints])

    def scalar_sample():
        r = np.random.default_rng(7)
        for m in sparse:
            L._scalar_sample_mask(m, 0.1, r)

    def batched_sample():
        r = np.random.default_rng(7)
        L.sample_masks_int(sparse_ints, 0.1, r)

    scalar_s = _best_of(15, scalar_sample)
    batched_s = _best_of(15, batched_sample)
    return {
        "popcount_scalar_s": scalar_pop,
        "popcount_int_s": fast_pop,
        "popcount_speedup": scalar_pop / max(fast_pop, 1e-12),
        "sample_scalar_s": scalar_s,
        "sample_batched_int_s": batched_s,
        "sample_speedup": scalar_s / max(batched_s, 1e-12),
    }


def _bench_row_kernels() -> dict:
    """Row-batched mask sampling and DIN coding vs their per-line forms."""
    rng = np.random.default_rng(99)
    rows = rng.integers(
        0, 1 << 64, size=(LINES_PER_PAGE, LINE_WORDS), dtype=L.WORD_DTYPE
    )
    row_ints = [L.to_int(row) for row in rows]
    data = rng.integers(0, 256, size=(LINES_PER_PAGE, 64), dtype=np.uint8)
    data_ints = [int.from_bytes(d.tobytes(), "little") for d in data]
    coder = D.DINEncoder()

    def scalar_rows_sample():
        r = np.random.default_rng(5)
        return [L._scalar_sample_mask(row, 0.05, r) for row in rows]

    def batched_rows_sample():
        r = np.random.default_rng(5)
        return L.sample_masks_rows(rows, 0.05, r)

    # Equivalence first (the CI divergence gate for the row kernels).
    assert [L.to_int(m) for m in batched_rows_sample()] == [
        L.to_int(m) for m in scalar_rows_sample()
    ]
    scalar_s = _best_of(15, scalar_rows_sample)
    rows_s = _best_of(15, batched_rows_sample)

    def perline_din():
        return [
            coder.encode_stored_int(row, d)
            for row, d in zip(row_ints, data_ints)
        ]

    def rows_din():
        return coder.encode_stored_rows(rows, data)

    stored_rows, flag_rows = rows_din()
    reference = perline_din()
    assert [L.to_int(s) for s in stored_rows] == [s for s, _ in reference]
    assert [int(f) for f in flag_rows] == [f for _, f in reference]
    perline_s = _best_of(15, perline_din)
    din_rows_s = _best_of(15, rows_din)
    return {
        "rows_sample_scalar_s": scalar_s,
        "rows_sample_batched_s": rows_s,
        "rows_sample_speedup": scalar_s / max(rows_s, 1e-12),
        "din_perline_s": perline_s,
        "din_rows_s": din_rows_s,
        "din_rows_speedup": perline_s / max(din_rows_s, 1e-12),
    }


def _scalar_trace_loop(gen: SyntheticTraceGenerator, length: int) -> list:
    """Replica of the pre-PR per-record generation loop (reference)."""
    import zlib

    bench = gen.profile
    name_tag = zlib.crc32(bench.name.encode()) & 0xFFFF
    rng = np.random.default_rng((gen.seed, gen.core, name_tag))
    cdf, perm = _zipf_page_sampler(bench.working_set_pages, bench.zipf_s, rng)
    is_write = rng.random(length) < bench.write_fraction
    p = min(1.0, 1.0 / max(bench.mean_gap, 1.0))
    gaps = rng.geometric(p, size=length) - 1
    streaming = rng.random(length) < bench.seq_fraction
    fresh_draws = rng.random(length)
    line_cdf, line_perm = _zipf_page_sampler(LINES_PER_PAGE, 0.9, rng)
    line_draws = rng.random(length)

    out = []
    page = int(perm[np.searchsorted(cdf, fresh_draws[0])])
    line = int(line_perm[np.searchsorted(line_cdf, line_draws[0])])
    for i in range(length):
        if i and streaming[i]:
            line += 1
            if line >= LINES_PER_PAGE:
                line = 0
                page = (page + 1) % bench.working_set_pages
        elif i:
            page = int(perm[np.searchsorted(cdf, fresh_draws[i])])
            rank = int(line_perm[np.searchsorted(line_cdf, line_draws[i])])
            line = (rank + page * 7) % LINES_PER_PAGE
        address = (gen.base_page + page) * PAGE_BYTES + line * LINE_BYTES
        out.append((bool(is_write[i]), address, int(gaps[i])))
    return out


def _bench_traces() -> dict:
    gen = SyntheticTraceGenerator(profile("mcf"), seed=1, core=0)
    length = 20_000

    # Equivalence first: the vectorized columns must reproduce the loop.
    trace = gen.generate(length)
    reference = _scalar_trace_loop(gen, length)
    assert trace.is_write.tolist() == [r[0] for r in reference]
    assert trace.address.tolist() == [r[1] for r in reference]
    assert trace.gap.tolist() == [r[2] for r in reference]

    scalar_s = _best_of(3, lambda: _scalar_trace_loop(gen, length))
    vector_s = _best_of(3, lambda: gen.generate(length))
    return {
        "trace_length": length,
        "trace_scalar_s": scalar_s,
        "trace_vectorized_s": vector_s,
        "trace_speedup": scalar_s / max(vector_s, 1e-12),
    }


def _bench_cold_cell(tmp_path) -> dict:
    """The reference cell, cold, under every kernel backend on this host.

    Each backend is timed both with the leaf write-phase samplers and
    with the fused write-phase kernel forced on.  Byte-identity across
    every backend × mode combination is a hard gate; the per-backend
    times become the ``backends`` calibration table the adaptive planner
    seeds its kernel and fused-vs-leaf picks from (host-fingerprint
    guarded), and each same-run ``fused_speedup`` is asserted against
    MIN_FUSED_SPEEDUP so a fused regression fails loudly.
    """
    from repro.pcm import kernels

    spec = common.cell(
        "mcf", schemes.by_name("LazyC+PreRead"), length=1200, cores=4
    )
    engine.reset()
    backends: dict = {}
    digests: dict = {}
    saved_fused = os.environ.get("REPRO_KERNEL_FUSED")
    try:
        for name in kernels.available_backends():
            entry: dict = {}
            for fused, key in (
                (False, "cold_cell_s"), (True, "cold_cell_fused_s")
            ):
                if fused:
                    os.environ["REPRO_KERNEL_FUSED"] = "1"
                else:
                    os.environ.pop("REPRO_KERNEL_FUSED", None)
                best = float("inf")
                for attempt in range(2):
                    runner = CellRunner(
                        jobs=1, kernel_backend=name,
                        cache=ResultCache(
                            tmp_path / f"{name}{'f' if fused else ''}{attempt}",
                            enabled=True,
                        ),
                    )
                    t0 = time.perf_counter()
                    results = runner.run_cells([spec])
                    best = min(best, time.perf_counter() - t0)
                digests[f"{name}+fused" if fused else name] = _digest(results)
                entry[key] = best
            entry["fused_speedup"] = entry["cold_cell_s"] / max(
                entry["cold_cell_fused_s"], 1e-12
            )
            flavor = getattr(kernels.get_backend(name), "flavor", None)
            if flavor:
                entry["flavor"] = flavor
            backends[name] = entry
    finally:
        if saved_fused is None:
            os.environ.pop("REPRO_KERNEL_FUSED", None)
        else:
            os.environ["REPRO_KERNEL_FUSED"] = saved_fused
    engine.reset()

    # The CI divergence gate: every backend and mode, the same bytes.
    assert digests and all(d == digests["python"] for d in digests.values()), (
        f"kernel backends diverged from the pure-Python reference: {digests}"
    )
    # The loud fused gate: >20% same-run regression is a failure, not a
    # recorded flag.
    for name, entry in backends.items():
        assert entry["fused_speedup"] >= MIN_FUSED_SPEEDUP, (
            f"fused write phase regressed on the {name} backend: "
            f"leaf {entry['cold_cell_s']:.3f}s vs fused "
            f"{entry['cold_cell_fused_s']:.3f}s is a "
            f"{entry['fused_speedup']:.2f}x ratio "
            f"(need >= {MIN_FUSED_SPEEDUP})"
        )
    best_backend = min(backends, key=lambda n: backends[n]["cold_cell_s"])
    best = backends[best_backend]["cold_cell_s"]
    python_s = backends["python"]["cold_cell_s"]
    out = {
        "cold_cell_s": best,
        "best_backend": best_backend,
        "backends": backends,
        "kernel_backends_identical": True,
        "cold_cell_target_s": COLD_CELL_TARGET_S,
        "cold_cell_target_met": best <= COLD_CELL_TARGET_S,
        "pre_pr_cold_cell_s": PRE_PR_COLD_CELL_S,
        "pr4_cold_cell_s": PR4_COLD_CELL_S,
        "cold_cell_speedup": PRE_PR_COLD_CELL_S / max(best, 1e-12),
        "cold_cell_speedup_vs_pr4": PR4_COLD_CELL_S / max(best, 1e-12),
    }
    # Same-run cross-backend ratios: these transfer across hosts, so
    # they (not the absolute target) are what the baseline check gates.
    for name in ("numpy", "compiled"):
        if name in backends:
            out[f"kernel_{name}_speedup"] = python_s / max(
                backends[name]["cold_cell_s"], 1e-12
            )
    # Same-run leaf-vs-fused ratios, lifted to the top level so the
    # committed-baseline check can gate them like the other ratios.
    for name, entry in backends.items():
        out[f"fused_{name}_speedup"] = entry["fused_speedup"]
    return out


def _digest(results) -> str:
    blob = pickle.dumps([dataclasses.asdict(r) for r in results])
    return hashlib.sha256(blob).hexdigest()


def _bench_batched_cells() -> dict:
    """The cross-cell batch layer vs per-cell, byte-identity enforced.

    Four cold cells over one workload trace: per-cell and batched runs
    each start from a cleared state plane, so the batched number shows
    what chunk-mates sharing the plane (and one trace attachment) buys.
    """
    specs = [
        common.cell("mcf", schemes.by_name(name), length=300, cores=2)
        for name in ("baseline", "DIN", "LazyC", "LazyC+PreRead")
    ]

    engine.reset()
    t0 = time.perf_counter()
    reference = [simulate_cell(spec) for spec in specs]
    percell_s = time.perf_counter() - t0

    engine.reset()
    t0 = time.perf_counter()
    batched = batchexec.simulate_batch(specs, batch_cells=8)
    batched_s = time.perf_counter() - t0
    engine.reset()

    # The CI divergence gate: batching must not change a single byte.
    assert _digest(batched) == _digest(reference), (
        "batched cell results diverged from the per-cell reference"
    )
    return {
        "batched_cells": len(specs),
        "percell_cells_s": percell_s,
        "batched_cells_s": batched_s,
        "batched_amortized_cell_s": batched_s / len(specs),
        "batched_identical_to_percell": True,
    }


def _check_against_baseline(results: dict) -> None:
    """Fail on a >20% ratio regression vs a committed baseline (CI gate)."""
    baseline_path = os.environ.get("REPRO_BENCH_BASELINE")
    if not baseline_path:
        return
    baseline = json.loads(Path(baseline_path).read_text())
    for field in BASELINE_RATIO_FIELDS:
        reference = baseline.get(field)
        if not isinstance(reference, (int, float)) or reference <= 0:
            continue
        if field not in results:
            # A per-backend ratio the current host cannot measure (say,
            # no compiled backend here): nothing to gate.
            continue
        floor = reference * BASELINE_TOLERANCE
        assert results[field] >= floor, (
            f"{field} regressed: {results[field]:.2f} < {floor:.2f} "
            f"(committed baseline {reference:.2f}, tolerance "
            f"{BASELINE_TOLERANCE:.0%})"
        )


def _write_results(results: dict, filename: str) -> Path:
    """Write to the out dir; refresh the repo-root baseline when asked."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(results, indent=2, sort_keys=True) + "\n"
    out_path = OUT_DIR / filename
    out_path.write_text(blob)
    if os.environ.get("REPRO_BENCH_WRITE_ROOT") == "1":
        (REPO_ROOT / filename).write_text(blob)
    return out_path


def test_bench_kernels(tmp_path):
    from repro.perf.planner import host_fingerprint

    results = {
        "schema_version": SCHEMA_VERSION,
        "line_words": LINE_WORDS,
        "host": host_fingerprint(),
    }
    results.update(_bench_kernels())
    results.update(_bench_row_kernels())
    results.update(_bench_traces())
    results.update(_bench_cold_cell(tmp_path))
    results.update(_bench_batched_cells())

    out_path = _write_results(results, "BENCH_kernels.json")
    print(
        f"\npopcount {results['popcount_speedup']:.1f}x, "
        f"sampling {results['sample_speedup']:.1f}x, "
        f"row sampling {results['rows_sample_speedup']:.1f}x, "
        f"DIN rows {results['din_rows_speedup']:.1f}x, "
        f"trace gen {results['trace_speedup']:.1f}x, "
        f"cold cell {results['cold_cell_s']:.3f}s via "
        f"{results['best_backend']} "
        f"({results['cold_cell_speedup']:.2f}x vs pre-PR, "
        f"{results['cold_cell_speedup_vs_pr4']:.2f}x vs PR 4; "
        + ", ".join(
            f"{name}={entry['cold_cell_s']:.3f}s"
            f"/fused={entry['cold_cell_fused_s']:.3f}s"
            for name, entry in results["backends"].items()
        )
        + "), "
        f"batched cell {results['batched_amortized_cell_s']:.3f}s amortized "
        f"-> {out_path}"
    )

    assert results["popcount_speedup"] >= MIN_POPCOUNT_SPEEDUP
    assert results["sample_speedup"] >= MIN_SAMPLE_SPEEDUP
    assert results["trace_speedup"] >= MIN_TRACE_SPEEDUP
    assert results["cold_cell_speedup"] >= MIN_CELL_SPEEDUP, (
        f"cold cell {results['cold_cell_s']:.3f}s is only "
        f"{results['cold_cell_speedup']:.2f}x faster than the pre-PR "
        f"{PRE_PR_COLD_CELL_S}s baseline (need {MIN_CELL_SPEEDUP}x)"
    )
    _check_against_baseline(results)
