"""Benchmark harness support.

Every benchmark regenerates one paper table/figure via the corresponding
``repro.experiments`` module, prints the rendered table (visible with
``pytest -s``), and archives it under ``benchmarks/out/`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the complete set of
reproduced tables on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(os.environ.get("REPRO_BENCH_OUT", Path(__file__).parent / "out"))


@pytest.fixture
def record_result():
    """Print an ExperimentResult and archive its rendering."""

    def _record(name: str, result) -> None:
        text = result.render()
        print("\n" + text)
        OUT_DIR.mkdir(parents=True, exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
