"""Regenerates Figure 5: basic-VnC overhead decomposition."""

from repro.experiments import figure5


def test_bench_figure5(benchmark, record_result):
    result = benchmark.pedantic(figure5.run_experiment, rounds=1, iterations=1)
    record_result("figure5", result)
    # Paper shape: both components positive, correction >= verification-ish,
    # total = verification + correction (stacked).
    assert result.metrics["verification_overhead"] > 0.0
    assert result.metrics["correction_overhead"] > 0.0
    total = result.metrics["total_overhead"]
    assert total > result.metrics["verification_overhead"]
