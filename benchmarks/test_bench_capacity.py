"""Regenerates the Figure 1 / Section 6.1 capacity analysis."""

from repro.experiments import capacity


def test_bench_capacity(benchmark, record_result):
    result = benchmark.pedantic(capacity.run_experiment, rounds=1, iterations=1)
    record_result("capacity", result)
    assert abs(result.metrics["capacity_gain"] - 0.80) < 0.01
