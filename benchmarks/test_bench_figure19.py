"""Regenerates Figure 19: write cancellation x LazyCorrection."""

from repro.experiments import figure19


def test_bench_figure19(benchmark, record_result):
    result = benchmark.pedantic(figure19.run_experiment, rounds=1, iterations=1)
    record_result("figure19", result)
    m = result.metrics
    # Paper shape: VnC < WC, VnC < LazyC < WC+LazyC.
    assert m["VnC"] == 1.0
    assert m["WC"] > 0.98
    assert m["LazyC"] > 1.05
    assert m["WC+LazyC"] > m["LazyC"] * 0.98
