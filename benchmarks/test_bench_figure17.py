"""Regenerates Figure 17: data-chip lifetime degradation."""

from repro.experiments import figure17


def test_bench_figure17(benchmark, record_result):
    result = benchmark.pedantic(figure17.run_experiment, rounds=1, iterations=1)
    record_result("figure17", result)
    # Paper: ~0.04% degradation; anything under 1% preserves the claim that
    # LazyC's correction traffic is negligible wear.
    assert result.metrics["mean_degradation"] < 0.01
