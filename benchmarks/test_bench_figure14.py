"""Regenerates Figure 14: performance across the DIMM lifetime."""

from repro.experiments import figure14


def test_bench_figure14(benchmark, record_result):
    result = benchmark.pedantic(figure14.run_experiment, rounds=1, iterations=1)
    record_result("figure14", result)
    # Paper shape: flat through most of the lifetime, with a small
    # end-of-life dip once hard errors crowd the ECP entries (the paper
    # reports ~0.2%; our larger correction cost amplifies it, see
    # EXPERIMENTS.md D1).
    assert result.metrics["life0"] == 1.0
    assert result.metrics["life75"] > 0.97
    assert result.metrics["life100"] > 0.90
