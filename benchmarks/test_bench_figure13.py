"""Regenerates Figure 13: speedup vs ECP entries."""

from repro.experiments import figure13


def test_bench_figure13(benchmark, record_result):
    result = benchmark.pedantic(figure13.run_experiment, rounds=1, iterations=1)
    record_result("figure13", result)
    m = result.metrics
    # Paper shape: big jump from ECP-0 to ECP-6 (~21%), flat afterwards.
    assert m["ecp6"] > m["ecp0"] * 1.05
    assert abs(m["ecp10"] - m["ecp6"]) < 0.05 * m["ecp6"]
