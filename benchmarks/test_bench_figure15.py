"""Regenerates Figure 15: write-queue size sensitivity (LazyC+PreRead)."""

from repro.experiments import figure15


def test_bench_figure15(benchmark, record_result):
    result = benchmark.pedantic(figure15.run_experiment, rounds=1, iterations=1)
    record_result("figure15", result)
    m = result.metrics
    # Paper shape: 32 entries about as good as 64; all sizes beat baseline.
    assert m["wq32"] > 1.0
    assert abs(m["wq64"] - m["wq32"]) < 0.12 * m["wq32"]
