"""Regenerates the reproduction scorecard (paper claims vs measured)."""

from repro.experiments import scorecard


def test_bench_scorecard(benchmark, record_result):
    result = benchmark.pedantic(scorecard.run_experiment, rounds=1, iterations=1)
    record_result("scorecard", result)
    assert result.metrics["passed"] == result.metrics["checks"]
