"""Regenerates Figure 16: (n:m) ratio sweep."""

from repro.experiments import figure16


def test_bench_figure16(benchmark, record_result):
    result = benchmark.pedantic(figure16.run_experiment, rounds=1, iterations=1)
    record_result("figure16", result)
    m = result.metrics
    # Paper shape: monotone improvement toward (1:2).
    assert m["1:2"] >= m["2:3"] >= m["3:4"] >= m["7:8"] * 0.98
    assert m["1:2"] > 1.1
