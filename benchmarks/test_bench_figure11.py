"""Regenerates Figure 11: scheme comparison (the headline result)."""

from repro.experiments import figure11


def test_bench_figure11(benchmark, record_result):
    result = benchmark.pedantic(figure11.run_experiment, rounds=1, iterations=1)
    record_result("figure11", result)
    m = result.metrics
    # Paper ordering: baseline < LazyC < {LazyC+PreRead, LazyC+(2:3)} <
    # all-three <= (1:2) ~= DIN.
    assert m["baseline"] == 1.0
    assert 1.0 < m["LazyC"] < m["LazyC+PreRead"]
    assert m["LazyC"] < m["LazyC+(2:3)"]
    assert m["LazyC+PreRead"] < m["LazyC+PreRead+(2:3)"]
    assert m["LazyC+PreRead+(2:3)"] < m["DIN"] * 1.02
    assert abs(m["(1:2)"] - m["DIN"]) / m["DIN"] < 0.06
