"""Regenerates the node-sensitivity extension study."""

from repro.experiments import node_sensitivity


def test_bench_node_sensitivity(benchmark, record_result):
    result = benchmark.pedantic(
        node_sensitivity.run_experiment, rounds=1, iterations=1
    )
    record_result("node_sensitivity", result)
    m = result.metrics
    # Disturbance probability rises as the node shrinks...
    assert m["p_bl_16"] > m["p_bl_20"] > m["p_bl_30"]
    # ...and 20 nm reproduces Table 1 exactly.
    assert abs(m["p_bl_20"] - 0.115) < 1e-6
    # LazyC keeps a solid margin over baseline at every node.
    for node in (30, 20, 16):
        assert m[f"lazyc_{node}"] > 1.05
