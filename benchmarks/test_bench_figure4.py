"""Regenerates Figure 4: WD errors per line write."""

from repro.experiments import figure4


def test_bench_figure4(benchmark, record_result):
    result = benchmark.pedantic(figure4.run_experiment, rounds=1, iterations=1)
    record_result("figure4", result)
    # Paper shapes: ~0.4 word-line avg, ~2 adjacent avg, max near 9.
    assert 0.15 < result.metrics["mean_wordline_errors"] < 0.8
    assert 1.0 < result.metrics["mean_adjacent_errors"] < 3.5
    assert result.metrics["max_adjacent_errors"] >= 5
