"""Regenerates Figure 18: ECP-chip lifetime degradation."""

from repro.experiments import figure18


def test_bench_figure18(benchmark, record_result):
    result = benchmark.pedantic(figure18.run_experiment, rounds=1, iterations=1)
    record_result("figure18", result)
    m = result.metrics["mean_degradation"]
    # Paper shape: ECP-chip degradation is clearly larger than the data
    # chips' (Figure 17) yet the ECP chip's ~10x lifetime headroom keeps
    # the DIMM lifetime data-chip-bound.  Our synthetic traces are far
    # shorter than the paper's 10M references, so ECP entries are still in
    # their novelty phase and the absolute degradation overshoots the
    # paper's 8% (see EXPERIMENTS.md); the conclusion-level property is
    # what must hold.
    assert m > 0.02                      # "more significant" than data chips
    assert 10.0 * (1.0 - m) > 1.0        # DIMM lifetime still data-chip-bound
