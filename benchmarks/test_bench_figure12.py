"""Regenerates Figure 12: corrections per write vs ECP entries."""

from repro.experiments import figure12


def test_bench_figure12(benchmark, record_result):
    result = benchmark.pedantic(figure12.run_experiment, rounds=1, iterations=1)
    record_result("figure12", result)
    m = result.metrics
    # Paper shape: ~1.8 at ECP-0 collapsing to ~0 by ECP-6.
    assert 1.2 < m["ecp0"] < 2.2
    assert m["ecp4"] < 0.3
    assert m["ecp6"] < 0.1
    assert m["ecp0"] > m["ecp2"] > m["ecp4"] >= m["ecp6"] >= m["ecp8"]
