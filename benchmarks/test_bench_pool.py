"""CI smoke benchmark for the warm pool and shared-memory trace plane.

Three measurements, written machine-readably to ``BENCH_pool.json``:

* ``cold_batch_s`` — first pooled batch: pays the executor fork and
  publishes each distinct trace on the shared-memory plane.
* ``warm_batch_s`` — a second batch of *different* cold cells over the
  same runner: the executor is reused (no fork) and the traces are
  already published.
* ``serial_batch_s`` — the same second batch simulated serially, as the
  equivalence baseline: pooled payload hashes must match serial ones
  byte-for-byte.
* ``batch_batch_s`` — a third batch through the cross-cell batched path
  (one chunk per dispatch instead of one cell), also hash-checked
  against its own serial run.  This is the calibration field the
  adaptive planner seeds its ``batch`` per-cell cost from.

The hard assertions are semantic (pool reused, plane hit, results
identical, and the planner refusing to pool on a 1-CPU host); the
wall-clock ratio is recorded but only loosely bounded — on a
single-core CI runner process parallelism cannot beat serial compute,
and the honest win there is the amortized fork + zero-copy trace reuse.

Set ``REPRO_BENCH_WRITE_ROOT=1`` to refresh the repo-root
``BENCH_pool.json`` baseline (the planner's calibration source) in
place.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

from conftest import OUT_DIR

from repro.core import schemes
from repro.experiments import common
from repro.perf import engine
from repro.perf.cache import ResultCache
from repro.perf.engine import STATS, CellRunner
from repro.perf.planner import AdaptivePlanner
from repro.perf.pool import WARM_POOL
from repro.traces import shm

#: Bump when a field is renamed or its meaning changes; additions are free.
#: v2: measuring ``host`` fingerprint — the planner ignores committed
#: calibration recorded on a materially different machine.
SCHEMA_VERSION = 2

REPO_ROOT = Path(__file__).resolve().parents[1]

CELL = dict(length=300, cores=2)
SCHEMES = (schemes.baseline(), schemes.din(), schemes.lazyc(),
           schemes.preread())


def batch(bench: str, seed: int):
    """Four schemes over one (bench, seed) workload: one shared trace."""
    return [
        common.cell(bench, scheme, seed=seed, **CELL) for scheme in SCHEMES
    ]


def sweep_hash(results) -> str:
    blob = json.dumps(
        [dataclasses.asdict(r) for r in results],
        sort_keys=True, default=str,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def test_bench_warm_pool(tmp_path):
    engine.reset()
    # The bench measures the *forced* modes (that is what the planner's
    # calibration is seeded from); auto mode would rightly pick serial
    # on a 1-CPU CI runner and never fork the pool.
    runner = CellRunner(jobs=2, plan="pool",
                        cache=ResultCache(tmp_path / "pool", enabled=True))

    start = time.perf_counter()
    runner.run_cells(batch("mcf", seed=7))
    cold_s = time.perf_counter() - start
    assert WARM_POOL.alive, "pool should stay warm after a clean batch"
    forks_before = WARM_POOL.generation

    second = batch("mcf", seed=11)
    start = time.perf_counter()
    pooled = runner.run_cells(second)
    warm_s = time.perf_counter() - start
    assert WARM_POOL.generation == forks_before, "warm batch must not re-fork"
    assert STATS.pool_reuses >= 1
    # Four schemes per batch share one trace: published once, hit thrice.
    assert shm.PLANE.published == 2 and shm.PLANE.hits >= 6

    serial = CellRunner(jobs=1, cache=ResultCache(tmp_path / "serial",
                                                  enabled=True))
    start = time.perf_counter()
    baseline = serial.run_cells(second)
    serial_s = time.perf_counter() - start
    assert sweep_hash(pooled) == sweep_hash(baseline), (
        "warm-pool + trace-plane results must be byte-identical to serial"
    )

    # Third batch: the cross-cell batched path (four cells, one trace key,
    # one chunk dispatch) with its own serial equivalence check.
    third = batch("mcf", seed=13)
    batch_runner = CellRunner(
        jobs=2, plan="batch",
        cache=ResultCache(tmp_path / "batched", enabled=True),
    )
    start = time.perf_counter()
    chunked = batch_runner.run_cells(third)
    batch_s = time.perf_counter() - start
    assert STATS.batched_cells == len(third)
    assert STATS.batch_dispatches == 1
    third_serial = CellRunner(
        jobs=1, cache=ResultCache(tmp_path / "serial3", enabled=True)
    ).run_cells(third)
    assert sweep_hash(chunked) == sweep_hash(third_serial), (
        "batched-chunk results must be byte-identical to serial"
    )

    from repro.perf.planner import host_fingerprint

    results = {
        "schema_version": SCHEMA_VERSION,
        "host": host_fingerprint(),
        "cold_batch_s": round(cold_s, 4),
        "warm_batch_s": round(warm_s, 4),
        "serial_batch_s": round(serial_s, 4),
        "batch_batch_s": round(batch_s, 4),
        "warm_vs_cold_speedup": round(cold_s / max(warm_s, 1e-9), 2),
        "cells_per_batch": len(second),
        "jobs": runner.jobs,
        "pool_reuses": STATS.pool_reuses,
        "pool_recycles": STATS.pool_recycles,
        "pool_generations": WARM_POOL.generation,
        "plane_segments": shm.PLANE.published,
        "plane_reuses": shm.PLANE.hits,
        "batched_cells": STATS.batched_cells,
        "batch_dispatches": STATS.batch_dispatches,
    }
    print("\n" + json.dumps(results, indent=2, sort_keys=True))
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(results, indent=2, sort_keys=True) + "\n"
    out_path = OUT_DIR / "BENCH_pool.json"
    out_path.write_text(blob)
    if os.environ.get("REPRO_BENCH_WRITE_ROOT") == "1":
        (REPO_ROOT / "BENCH_pool.json").write_text(blob)

    # Generous sanity bound: reusing the warm pool must never be
    # drastically slower than paying a fresh fork for the same work.
    assert warm_s < max(cold_s * 3.0, 5.0), results
    engine.reset()


def test_planner_refuses_to_pool_on_one_cpu(monkeypatch):
    """The acceptance case: 1 effective CPU, small cold batch -> serial.

    Seeded from this machine's own calibration (when the committed
    baseline exists) or the defaults, the planner must decide that a
    six-cell cold batch on a single CPU runs serially — pooling there
    pays fork + IPC for no parallelism (BENCH_pool.json: 0.66s pooled
    vs 0.54s serial for the same cells when this was measured).
    """
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    planner = AdaptivePlanner()
    assert planner.decide(6, jobs=4, batch_cells=8) == "serial"
    assert planner.decide(2, jobs=2, batch_cells=1) == "serial"
